//! The composite Consumer/Producer — R-GMA's missing aggregate
//! information server, built exactly as the paper suggests:
//!
//! > "This component could easily be built for R-GMA by using a composite
//! > Consumer/Producer that registered with the data streams of a number
//! > of Producers, and served the data in an aggregated form."
//!
//! The [`CompositeProducer`] subscribes (push mode) to a table on every
//! configured ProducerServlet, folds the streamed tuples into its own
//! tuple store (latest row per `(source, entity)`), and answers
//! [`RgmaMsg::ProducerQuery`] against the aggregate — so consumers get
//! one-stop answers without mediating over every producer.

use crate::proto::{RgmaMsg, SqlResultMsg};
use crate::{DB_FIXED_CPU_US, JVM_DISPATCH_CPU_US, ROW_SCAN_CPU_US, SQL_PARSE_CPU_US};
use relsql::{Database, SharedRow, SqlValue};
use simcore::SimDuration;
use simnet::{Payload, Plan, Service, SvcCx, SvcKey};

/// CPU cost of folding one streamed tuple into the aggregate store.
pub const FOLD_CPU_PER_TUPLE_US: f64 = 300.0;

/// The composite Consumer/Producer service.
pub struct CompositeProducer {
    /// The table it aggregates.
    table: String,
    /// The ProducerServlets it consumes from.
    sources: Vec<SvcKey>,
    /// Push period it requests from each source.
    stream_period: SimDuration,
    /// The aggregate tuple store.
    db: Database,
    /// Own key (set by the deployment; needed to subscribe).
    pub me: Option<SvcKey>,
    /// Counters.
    pub queries: u64,
    pub tuples_folded: u64,
    pub batches_received: u64,
    subscribed: bool,
    next_source_id: i64,
}

impl CompositeProducer {
    pub fn new(table: &str, sources: Vec<SvcKey>, stream_period: SimDuration) -> Self {
        let mut db = Database::new();
        db.execute(&format!(
            "CREATE TABLE {table} (key TEXT PRIMARY KEY, source INT, entity TEXT, value REAL, seq INT)"
        ))
        .expect("aggregate table");
        CompositeProducer {
            table: table.to_string(),
            sources,
            stream_period,
            db,
            me: None,
            queries: 0,
            tuples_folded: 0,
            batches_received: 0,
            subscribed: false,
            next_source_id: 0,
        }
    }

    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Rows currently aggregated.
    pub fn aggregated_rows(&mut self) -> usize {
        self.db
            .execute(&format!("SELECT COUNT(*) FROM {}", self.table))
            .map(|r| match r.rows[0][0] {
                SqlValue::Int(n) => n as usize,
                _ => 0,
            })
            .unwrap_or(0)
    }

    /// Fold one streamed batch into the aggregate store.  Runs once per
    /// tuple per batch, so it uses the direct row APIs: the upsert is
    /// still delete + insert on the `key` primary key, without building
    /// and parsing two SQL strings per tuple.
    fn fold(&mut self, source_id: i64, rows: &[SharedRow]) {
        for row in rows {
            // Producer rows are (entity, value, seq).
            let entity = row
                .first()
                .and_then(|v| v.as_text())
                .unwrap_or("?")
                .to_string();
            let value = row.get(1).and_then(|v| v.as_number()).unwrap_or(0.0);
            let seq = row.get(2).and_then(|v| v.as_number()).unwrap_or(0.0) as i64;
            let key = SqlValue::Text(format!("{source_id}:{entity}"));
            // Whole-number values store as INT, as their SQL literal
            // form used to parse (see `ProducerServlet::publish`).
            let value = if value.fract() == 0.0 {
                SqlValue::Int(value as i64)
            } else {
                SqlValue::Real(value)
            };
            let _ = self.db.delete_where_eq(&self.table, "key", &key);
            let _ = self.db.insert_row(
                &self.table,
                vec![
                    key,
                    SqlValue::Int(source_id),
                    SqlValue::Text(entity),
                    value,
                    SqlValue::Int(seq),
                ],
            );
            self.tuples_folded += 1;
        }
    }
}

impl Service for CompositeProducer {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        let msg = req
            .downcast::<RgmaMsg>()
            .expect("CompositeProducer expects RgmaMsg");
        match *msg {
            // Streamed tuples from a source servlet.
            RgmaMsg::Stream { rows, .. } => {
                self.batches_received += 1;
                // Source attribution: round-robin over subscription order
                // is not recoverable from the stream; key by a rotating id
                // per batch sender (entity keys keep rows distinct).
                let sid = self.next_source_id % self.sources.len().max(1) as i64;
                self.next_source_id += 1;
                let n = rows.len();
                self.fold(sid, &rows);
                Plan::new()
                    .cpu(FOLD_CPU_PER_TUPLE_US * n as f64 + DB_FIXED_CPU_US * 0.2)
                    .done()
            }
            // Consumer query against the aggregate.
            RgmaMsg::ProducerQuery { sql } => {
                self.queries += 1;
                let sql = if sql == "*ALL*" {
                    format!("SELECT * FROM {}", self.table)
                } else {
                    sql
                };
                let (result, scanned) = match self.db.execute(&sql) {
                    Ok(r) => {
                        let scanned = r.scanned;
                        (SqlResultMsg::new(r.columns, r.rows), scanned)
                    }
                    Err(_) => (SqlResultMsg::new(vec![], vec![]), 1),
                };
                let bytes = result.bytes;
                Plan::new()
                    .cpu(
                        JVM_DISPATCH_CPU_US
                            + SQL_PARSE_CPU_US
                            + DB_FIXED_CPU_US
                            + ROW_SCAN_CPU_US * scanned as f64,
                    )
                    .reply(result, bytes)
            }
            other => {
                debug_assert!(false, "unexpected message ({} bytes)", other.wire_size());
                Plan::reply_empty()
            }
        }
    }

    fn resume(&mut self, _cont: u64, _outcomes: Vec<simnet::CallOutcome>, _cx: &mut SvcCx) -> Plan {
        // Subscription acks need no processing.
        Plan::new().cpu(500.0).reply((), 64)
    }

    fn on_timer(&mut self, _tag: u64, cx: &mut SvcCx) {
        // Deployment kick: subscribe to every source exactly once.
        if self.subscribed {
            return;
        }
        let Some(me) = self.me else { return };
        self.subscribed = true;
        for &src in &self.sources {
            let msg = RgmaMsg::Subscribe {
                table: self.table.clone(),
                sink: me,
                period_us: self.stream_period.as_micros(),
            };
            let bytes = msg.wire_size();
            // One-way subscribe: the servlet arms the stream; the ack is
            // immaterial to the data flow.
            cx.send_oneway(src, msg, bytes);
        }
    }

    fn name(&self) -> &str {
        "rgma-composite-producer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::default_producers;
    use crate::registry::Registry;
    use crate::servlets::ProducerServlet;
    use simcore::{Engine, SimTime};
    use simnet::{
        Client, ClientCx, Eng, Net, NodeId, ReqOutcome, ReqResult, RequestSpec, ServiceConfig,
        StatsHub, Topology,
    };
    use std::cell::RefCell;
    use std::rc::Rc;

    struct AskAll {
        from: NodeId,
        to: SvcKey,
        at_s: u64,
        rows: Rc<RefCell<Vec<usize>>>,
    }

    impl Client for AskAll {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.wake_in(simcore::SimDuration::from_secs(self.at_s), 0);
        }
        fn on_wake(&mut self, _t: u64, cx: &mut ClientCx) {
            let m = RgmaMsg::ProducerQuery {
                sql: "*ALL*".into(),
            };
            let bytes = m.wire_size();
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(m),
                    req_bytes: bytes,
                },
                0,
            );
        }
        fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
            if let ReqResult::Ok(p, _) = o.result {
                if let Ok(r) = p.downcast::<SqlResultMsg>() {
                    self.rows.borrow_mut().push(r.rows.len());
                }
            }
        }
    }

    #[test]
    fn composite_aggregates_multiple_servlets() {
        let mut topo = Topology::new();
        let client = topo.add_node("client", 1, 1.0);
        let agg_node = topo.add_node("aggregator", 2, 1.0);
        let mut ps_nodes = Vec::new();
        for i in 0..3 {
            let n = topo.add_node(format!("site{i}"), 2, 1.0);
            topo.connect(n, agg_node, 100e6, simcore::SimDuration::from_millis(1));
            topo.connect(n, client, 100e6, simcore::SimDuration::from_millis(1));
            ps_nodes.push(n);
        }
        topo.connect(
            client,
            agg_node,
            100e6,
            simcore::SimDuration::from_millis(1),
        );
        let reg_node = topo.add_node("registry", 2, 1.0);
        for &n in ps_nodes.iter().chain([&agg_node, &client]) {
            topo.connect(reg_node, n, 100e6, simcore::SimDuration::from_millis(1));
        }
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(600)));
        let mut eng: Eng = Engine::new(77);
        let reg = net.add_service(
            reg_node,
            ServiceConfig::default(),
            Box::new(Registry::new()),
            &mut eng,
        );
        // Three sites each publishing a cpuload table.
        let mut sources = Vec::new();
        for (i, &n) in ps_nodes.iter().enumerate() {
            let mut ps = ProducerServlet::new(default_producers(&format!("site{i}"), 3));
            ps.register_with(reg);
            let k = net.add_service(n, ServiceConfig::default(), Box::new(ps), &mut eng);
            net.service_as_mut::<ProducerServlet>(k).unwrap().me = Some(k);
            net.prime_service_timer(&mut eng, k, simcore::SimDuration::from_millis(100), 0);
            sources.push(k);
        }
        let comp = net.add_service(
            agg_node,
            ServiceConfig::default(),
            Box::new(CompositeProducer::new(
                "cpuload",
                sources,
                simcore::SimDuration::from_secs(10),
            )),
            &mut eng,
        );
        net.service_as_mut::<CompositeProducer>(comp).unwrap().me = Some(comp);
        net.prime_service_timer(&mut eng, comp, simcore::SimDuration::from_secs(35), 0);
        let rows = Rc::new(RefCell::new(Vec::new()));
        net.add_client(Box::new(AskAll {
            from: client,
            to: comp,
            at_s: 120,
            rows: rows.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(180));
        let c = net.service_as::<CompositeProducer>(comp).unwrap();
        assert_eq!(c.source_count(), 3);
        assert!(c.batches_received >= 9, "batches {}", c.batches_received);
        assert!(c.tuples_folded >= 72, "folded {}", c.tuples_folded);
        // The aggregate answers with rows from all three sites (3 sources
        // × 8 entities).
        let got = rows.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], 24, "aggregated rows");
    }
}
