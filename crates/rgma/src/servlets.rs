//! The Producer and Consumer servlets.
//!
//! R-GMA's moving parts are Java servlets, usually remote from the
//! producers/consumers they act for.  The **ProducerServlet** hosts the
//! tuple stores of its local producers and answers SQL queries against
//! them — serialized by the servlet's database lock, which is what makes
//! its response time grow almost linearly with concurrent users in the
//! paper's Experiment Set 1.  It also implements the push mode: consumers
//! subscribe to a table and receive tuple batches on a timer.
//!
//! The **ConsumerServlet** "consults the Registry to find suitable
//! Producers.  Then the servlet, acting on behalf of the Consumer, issues new
//! queries to the located Producers to request and return the data to
//! the Consumer."

use crate::producer::ProducerSpec;
use crate::proto::{ProducerList, RgmaMsg, SqlResultMsg};
use crate::{DB_FIXED_CPU_US, JVM_DISPATCH_CPU_US, ROW_SCAN_CPU_US, SQL_PARSE_CPU_US};
use relsql::{parse_stmt, Database, SqlValue, Stmt};
use simcore::SimDuration;
use simnet::{CallOutcome, LockKey, Payload, Plan, Service, SubCall, SvcCx, SvcKey};
use std::collections::HashMap;

/// Tag base for producer publish timers.
const TIMER_PUBLISH: u64 = 1 << 32;
/// Tag base for subscription stream timers.
const TIMER_STREAM: u64 = 2 << 32;

struct Subscription {
    table: String,
    /// `SELECT * FROM {table}` prebuilt once: each stream tick re-issues
    /// it, and a stable text string hits the statement cache.
    batch_sql: String,
    sink: SvcKey,
    period: SimDuration,
}

/// The ProducerServlet service.
pub struct ProducerServlet {
    db: Database,
    /// One `SELECT * FROM {table}` per producer, prebuilt at
    /// construction so each `*ALL*` (all-collectors) query re-issues
    /// stable texts that hit the statement cache instead of
    /// re-rendering and re-parsing one SELECT per table per query.
    all_sql: Vec<String>,
    producers: Vec<ProducerSpec>,
    registry: Option<SvcKey>,
    /// Own key (set by the deployment; needed for registration).
    pub me: Option<SvcKey>,
    /// The servlet's tuple-store lock (registered at deploy time).
    pub db_lock: Option<LockKey>,
    subscriptions: Vec<Subscription>,
    publish_seq: u64,
    /// When any producer on this servlet last published a round (`None`
    /// until the first publish) — the freshness a consumer query can see.
    pub last_publish_at: Option<simcore::SimTime>,
    /// Counters.
    pub queries: u64,
    pub tuples_published: u64,
    pub stream_batches: u64,
}

impl ProducerServlet {
    pub fn new(producers: Vec<ProducerSpec>) -> ProducerServlet {
        let mut db = Database::new();
        for p in &producers {
            db.execute(&format!(
                "CREATE TABLE {} (entity TEXT PRIMARY KEY, value REAL, seq INT)",
                p.table
            ))
            .expect("producer table");
        }
        let all_sql = producers
            .iter()
            .map(|p| format!("SELECT * FROM {}", p.table))
            .collect();
        ProducerServlet {
            db,
            all_sql,
            producers,
            registry: None,
            me: None,
            db_lock: None,
            subscriptions: Vec::new(),
            publish_seq: 0,
            last_publish_at: None,
            queries: 0,
            tuples_published: 0,
            stream_batches: 0,
        }
    }

    pub fn producer_count(&self) -> usize {
        self.producers.len()
    }

    /// Point this servlet at the Registry; registration messages go out
    /// when the deployment primes timer tag 0.
    pub fn register_with(&mut self, registry: SvcKey) {
        self.registry = Some(registry);
    }

    /// Rows currently stored for `table`.
    pub fn table_rows(&mut self, table: &str) -> usize {
        self.db
            .execute(&format!("SELECT COUNT(*) FROM {table}"))
            .map(|r| match r.rows[0][0] {
                SqlValue::Int(n) => n as usize,
                _ => 0,
            })
            .unwrap_or(0)
    }

    /// Publish one round of tuples for producer `i` (LatestProducer
    /// semantics: one current row per entity).
    ///
    /// The inner loop runs once per entity per period for every producer
    /// in the deployment, so it uses the direct row APIs — the upsert is
    /// still delete + insert against the primary key, without building
    /// and parsing two SQL strings per tuple.
    fn publish(&mut self, i: usize) {
        let Some(p) = self.producers.get(i) else {
            return;
        };
        let table = p.table.clone();
        let entities = p.entities;
        self.publish_seq += 1;
        let seq = self.publish_seq;
        for e in 0..entities {
            let val = ((seq * 37 + e as u64 * 11) % 1000) as f64 / 10.0;
            let entity = SqlValue::Text(format!("e{e}"));
            // Whole-number values store as INT, exactly as their SQL
            // literal form (`70`, not `70.0`) used to parse: the REAL
            // column widens, and the textual wire size stays the same.
            let value = if val.fract() == 0.0 {
                SqlValue::Int(val as i64)
            } else {
                SqlValue::Real(val)
            };
            // Upsert: delete + insert (LatestProducer keeps the newest).
            let _ = self.db.delete_where_eq(&table, "entity", &entity);
            self.db
                .insert_row(&table, vec![entity, value, SqlValue::Int(seq as i64)])
                .expect("publish insert");
            self.tuples_published += 1;
        }
    }

    fn run_query(db: &mut Database, sql: &str) -> (SqlResultMsg, usize) {
        match db.execute(sql) {
            Ok(r) => {
                let scanned = r.scanned;
                (SqlResultMsg::new(r.columns, r.rows), scanned)
            }
            Err(_) => (SqlResultMsg::new(vec![], vec![]), 1),
        }
    }

    fn locked(&self, inner: Plan) -> Plan {
        match self.db_lock {
            Some(l) => {
                let mut p = Plan::new().lock(l);
                p.steps.extend(inner.steps);
                let at = p
                    .steps
                    .iter()
                    .position(|s| matches!(s, simnet::Step::Reply { .. }))
                    .unwrap_or(p.steps.len());
                p.steps.insert(at, simnet::Step::Unlock(l));
                p
            }
            None => inner,
        }
    }
}

impl Service for ProducerServlet {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        let msg = req
            .downcast::<RgmaMsg>()
            .expect("ProducerServlet expects RgmaMsg");
        match *msg {
            RgmaMsg::ProducerQuery { sql } => {
                self.queries += 1;
                _cx.obs.incr("rgma.producer_queries", 1);
                if sql == "*ALL*" {
                    // The all-collectors query: one SELECT per table.
                    let mut total_rows = Vec::new();
                    let mut scanned = 0usize;
                    let mut cols = Vec::new();
                    for q in &self.all_sql {
                        let (r, s) = Self::run_query(&mut self.db, q);
                        scanned += s;
                        cols = r.columns;
                        total_rows.extend(r.rows);
                    }
                    let n_tables = self.producers.len();
                    let result = SqlResultMsg::new(cols, total_rows);
                    let bytes = result.bytes;
                    let cost = JVM_DISPATCH_CPU_US
                        + (SQL_PARSE_CPU_US + DB_FIXED_CPU_US) * n_tables as f64
                        + ROW_SCAN_CPU_US * scanned as f64;
                    return self.locked(Plan::new().cpu(cost).reply(result, bytes));
                }
                let (result, scanned) = Self::run_query(&mut self.db, &sql);
                let bytes = result.bytes;
                let cost = JVM_DISPATCH_CPU_US
                    + SQL_PARSE_CPU_US
                    + DB_FIXED_CPU_US
                    + ROW_SCAN_CPU_US * scanned as f64;
                self.locked(Plan::new().cpu(cost).reply(result, bytes))
            }
            RgmaMsg::Subscribe {
                table,
                sink,
                period_us,
            } => {
                let idx = self.subscriptions.len() as u64;
                self.subscriptions.push(Subscription {
                    batch_sql: format!("SELECT * FROM {table}"),
                    table,
                    sink,
                    period: SimDuration::from_micros(period_us),
                });
                // Arm the stream timer via the reply path: the plan can't
                // set timers, so emit the first batch from on_timer primed
                // through an action.
                _cx.set_timer(SimDuration::from_micros(period_us), TIMER_STREAM | idx);
                Plan::new().cpu(JVM_DISPATCH_CPU_US).reply((), 300)
            }
            other => {
                debug_assert!(false, "unexpected message ({} bytes)", other.wire_size());
                Plan::reply_empty()
            }
        }
    }

    fn on_timer(&mut self, tag: u64, cx: &mut SvcCx) {
        if tag == 0 {
            // Deployment kick: register every producer with the Registry
            // and start the publish loops.
            if let (Some(registry), Some(me)) = (self.registry, self.me) {
                for p in &self.producers {
                    let msg = RgmaMsg::RegistryRegister {
                        servlet: me,
                        table: p.table.clone(),
                        predicate: p.predicate.clone(),
                    };
                    let bytes = msg.wire_size();
                    cx.send_oneway(registry, msg, bytes);
                }
            }
            for i in 0..self.producers.len() {
                cx.set_timer(
                    self.producers[i]
                        .publish_period
                        .mul_f64(0.1 + 0.8 * (i as f64 / self.producers.len().max(1) as f64)),
                    TIMER_PUBLISH | i as u64,
                );
            }
            return;
        }
        if tag & TIMER_PUBLISH != 0 && tag & TIMER_STREAM == 0 {
            let i = (tag & 0xFFFF_FFFF) as usize;
            self.publish(i);
            self.last_publish_at = Some(cx.now);
            if let Some(p) = self.producers.get(i) {
                cx.set_timer(p.publish_period, tag);
            }
            return;
        }
        if tag & TIMER_STREAM != 0 {
            let i = (tag & 0xFFFF_FFFF) as usize;
            let Some(sub) = self.subscriptions.get(i) else {
                return;
            };
            let table = sub.table.clone();
            let sink = sub.sink;
            let period = sub.period;
            let r = self.db.execute(&sub.batch_sql).ok();
            let rows = r.map(|r| r.rows).unwrap_or_default();
            if !rows.is_empty() {
                self.stream_batches += 1;
                let msg = RgmaMsg::Stream { table, rows };
                let bytes = msg.wire_size();
                cx.send_oneway(sink, msg, bytes);
            }
            cx.set_timer(period, tag);
        }
    }

    fn name(&self) -> &str {
        "rgma-producer-servlet"
    }
}

/// Pending state of a consumer query inside the ConsumerServlet.
enum CqStage {
    /// Waiting for the Registry.
    Registry { sql: String },
    /// Waiting for the producers.
    Producers,
}

/// The ConsumerServlet service.
pub struct ConsumerServlet {
    registry: SvcKey,
    pending: HashMap<u64, CqStage>,
    /// Query text -> mediated table (`None` = not a single-table
    /// SELECT).  Consumers re-issue the same handful of texts, so the
    /// table extraction parses each distinct text once.
    table_cache: HashMap<String, Option<String>>,
    next_cont: u64,
    /// Counters.
    pub queries: u64,
    pub mediations: u64,
}

impl ConsumerServlet {
    pub fn new(registry: SvcKey) -> ConsumerServlet {
        ConsumerServlet {
            registry,
            pending: HashMap::new(),
            table_cache: HashMap::new(),
            next_cont: 0,
            queries: 0,
            mediations: 0,
        }
    }
}

impl Service for ConsumerServlet {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        let msg = req
            .downcast::<RgmaMsg>()
            .expect("ConsumerServlet expects RgmaMsg");
        let RgmaMsg::ConsumerQuery { sql } = *msg else {
            debug_assert!(false, "unexpected message");
            return Plan::reply_empty();
        };
        self.queries += 1;
        _cx.obs.incr("rgma.consumer_queries", 1);
        // Which table does the query touch?  (Single-table SELECTs only —
        // that is all R-GMA 1.x's mediator handled well, too.)  Each
        // distinct query text is parsed once and remembered.
        let cached =
            self.table_cache
                .entry(sql.clone())
                .or_insert_with_key(|sql| match parse_stmt(sql) {
                    Ok(Stmt::Select { table, .. }) => Some(table),
                    _ => None,
                });
        let Some(table) = cached.clone() else {
            let result = SqlResultMsg::new(vec![], vec![]);
            let bytes = result.bytes;
            return Plan::new()
                .cpu(JVM_DISPATCH_CPU_US + SQL_PARSE_CPU_US)
                .reply(result, bytes);
        };
        let cont = self.next_cont;
        self.next_cont += 1;
        self.pending.insert(cont, CqStage::Registry { sql });
        let lookup = RgmaMsg::RegistryLookup { table };
        let bytes = lookup.wire_size();
        Plan::new()
            .cpu(JVM_DISPATCH_CPU_US + SQL_PARSE_CPU_US)
            .call_all(
                vec![SubCall {
                    to: self.registry,
                    payload: Box::new(lookup),
                    req_bytes: bytes,
                }],
                cont,
            )
    }

    fn resume(&mut self, cont: u64, outcomes: Vec<CallOutcome>, _cx: &mut SvcCx) -> Plan {
        match self.pending.remove(&cont) {
            Some(CqStage::Registry { sql }) => {
                // Registry answered (or failed: an unreachable Registry is
                // an error to the consumer, not an empty result).
                let any_response = outcomes.iter().any(|o| o.response.is_some());
                if !any_response {
                    return Plan::new().cpu(2_000.0).fail();
                }
                let producers: Vec<SvcKey> = outcomes
                    .into_iter()
                    .filter_map(|o| o.response)
                    .filter_map(|(p, _)| p.downcast::<ProducerList>().ok())
                    .flat_map(|l| l.producers)
                    .collect();
                if producers.is_empty() {
                    let result = SqlResultMsg::new(vec![], vec![]);
                    let bytes = result.bytes;
                    return Plan::new().cpu(2_000.0).reply(result, bytes);
                }
                self.mediations += 1;
                let cont2 = self.next_cont;
                self.next_cont += 1;
                self.pending.insert(cont2, CqStage::Producers);
                let calls: Vec<SubCall> = producers
                    .into_iter()
                    .map(|to| {
                        let q = RgmaMsg::ProducerQuery { sql: sql.clone() };
                        let bytes = q.wire_size();
                        SubCall {
                            to,
                            payload: Box::new(q),
                            req_bytes: bytes,
                        }
                    })
                    .collect();
                Plan::new().cpu(3_000.0).call_all(calls, cont2)
            }
            Some(CqStage::Producers) => {
                // Merge the producer answers; if every producer was
                // unreachable the query fails.
                if outcomes.iter().all(|o| o.response.is_none()) {
                    return Plan::new().cpu(2_000.0).fail();
                }
                let mut columns = Vec::new();
                let mut rows = Vec::new();
                for o in outcomes {
                    let Some((p, _)) = o.response else { continue };
                    if let Ok(r) = p.downcast::<SqlResultMsg>() {
                        if columns.is_empty() {
                            columns = r.columns;
                        }
                        rows.extend(r.rows);
                    }
                }
                let merge_cost = 2_000.0 + ROW_SCAN_CPU_US * rows.len() as f64;
                let result = SqlResultMsg::new(columns, rows);
                let bytes = result.bytes;
                Plan::new().cpu(merge_cost).reply(result, bytes)
            }
            None => {
                debug_assert!(false, "resume without pending state");
                Plan::reply_empty()
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-consumer-servlet"
    }
}

/// A consumer-side sink for push-mode tuple streams.
pub struct TupleSink {
    /// Tuples received so far.
    pub tuples: u64,
    /// Batches received.
    pub batches: u64,
}

impl TupleSink {
    pub fn new() -> TupleSink {
        TupleSink {
            tuples: 0,
            batches: 0,
        }
    }
}

impl Default for TupleSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for TupleSink {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        if let Ok(msg) = req.downcast::<RgmaMsg>() {
            if let RgmaMsg::Stream { rows, .. } = *msg {
                self.batches += 1;
                self.tuples += rows.len() as u64;
                return Plan::new()
                    .cpu(500.0 + 50.0 * self.tuples.min(100) as f64)
                    .done();
            }
        }
        Plan::new().done()
    }

    fn name(&self) -> &str {
        "rgma-tuple-sink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::default_producers;
    use crate::registry::Registry;
    use simcore::Engine;
    use simcore::SimTime;
    use simnet::{
        Client, ClientCx, Eng, Net, NodeId, ReqOutcome, ReqResult, RequestSpec, ServiceConfig,
        StatsHub, Topology,
    };

    struct AskSql {
        from: NodeId,
        to: SvcKey,
        at_s: u64,
        sql: String,
        results: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
    }

    impl Client for AskSql {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.wake_in(SimDuration::from_secs(self.at_s), 0);
        }
        fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
            let m = RgmaMsg::ConsumerQuery {
                sql: self.sql.clone(),
            };
            let bytes = m.wire_size();
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(m),
                    req_bytes: bytes,
                },
                0,
            );
        }
        fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
            if let ReqResult::Ok(p, _) = o.result {
                if let Ok(r) = p.downcast::<SqlResultMsg>() {
                    self.results.borrow_mut().push(r.rows.len());
                } else {
                    self.results.borrow_mut().push(usize::MAX);
                }
            }
        }
    }

    fn deploy() -> (Net, Eng, NodeId, SvcKey, SvcKey, SvcKey) {
        let mut topo = Topology::new();
        let client = topo.add_node("uc00", 1, 1.0);
        let reg_node = topo.add_node("lucky1", 2, 1.0);
        let ps_node = topo.add_node("lucky3", 2, 1.0);
        let cs_node = topo.add_node("lucky5", 2, 1.0);
        for a in [reg_node, ps_node, cs_node] {
            topo.connect(client, a, 100e6, SimDuration::from_millis(1));
        }
        topo.connect(reg_node, ps_node, 100e6, SimDuration::from_micros(200));
        topo.connect(reg_node, cs_node, 100e6, SimDuration::from_micros(200));
        topo.connect(ps_node, cs_node, 100e6, SimDuration::from_micros(200));
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(600)));
        let mut eng: Eng = Engine::new(41);
        // Registry with its DB lock.
        let lock = net.add_lock(1);
        let mut registry = Registry::new();
        registry.db_lock = Some(lock);
        let reg = net.add_service(
            reg_node,
            ServiceConfig::default(),
            Box::new(registry),
            &mut eng,
        );
        // ProducerServlet with 10 producers.
        let ps_lock = net.add_lock(1);
        let mut ps = ProducerServlet::new(default_producers("anl", 10));
        ps.db_lock = Some(ps_lock);
        ps.register_with(reg);
        let ps_key = net.add_service(ps_node, ServiceConfig::default(), Box::new(ps), &mut eng);
        net.service_as_mut::<ProducerServlet>(ps_key).unwrap().me = Some(ps_key);
        net.prime_service_timer(&mut eng, ps_key, SimDuration::from_millis(50), 0);
        // ConsumerServlet.
        let cs = net.add_service(
            cs_node,
            ServiceConfig::default(),
            Box::new(ConsumerServlet::new(reg)),
            &mut eng,
        );
        (net, eng, client, reg, ps_key, cs)
    }

    #[test]
    fn end_to_end_consumer_query() {
        let (mut net, mut eng, client, reg, ps, cs) = deploy();
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(AskSql {
            from: client,
            to: cs,
            at_s: 90, // give producers time to register & publish
            sql: "SELECT * FROM cpuload".into(),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(150));
        let results = results.borrow();
        assert_eq!(results.len(), 1);
        // LatestProducer: 8 entities, one row each.
        assert_eq!(results[0], 8);
        assert_eq!(net.service_as::<Registry>(reg).map(|r| r.lookups), Some(1));
        assert_eq!(
            net.service_as::<ConsumerServlet>(cs).map(|c| c.mediations),
            Some(1)
        );
        assert!(net.service_as::<ProducerServlet>(ps).unwrap().queries >= 1);
    }

    #[test]
    fn query_for_unknown_table_returns_empty() {
        let (mut net, mut eng, client, _reg, _ps, cs) = deploy();
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(AskSql {
            from: client,
            to: cs,
            at_s: 90,
            sql: "SELECT * FROM nonexistent".into(),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(150));
        assert_eq!(*results.borrow(), vec![0]);
    }

    #[test]
    fn registry_collects_all_registrations() {
        let (mut net, mut eng, _client, reg, ps, _cs) = deploy();
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(60));
        let registry = net.service_as_mut::<Registry>(reg).unwrap();
        assert_eq!(registry.registrations, 10);
        assert_eq!(registry.producer_count(), 10);
        let servlet = net.service_as::<ProducerServlet>(ps).unwrap();
        assert_eq!(servlet.producer_count(), 10);
    }

    #[test]
    fn producers_publish_latest_rows() {
        let (mut net, mut eng, _client, _reg, ps, _cs) = deploy();
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(120));
        let servlet = net.service_as_mut::<ProducerServlet>(ps).unwrap();
        // LatestProducer semantics: row count stays at the entity count
        // however many publish rounds have passed.
        assert_eq!(servlet.table_rows("cpuload"), 8);
        assert!(
            servlet.tuples_published > 80,
            "published {}",
            servlet.tuples_published
        );
    }

    #[test]
    fn push_mode_streams_tuples() {
        let (mut net, mut eng, client, _reg, ps, _cs) = deploy();
        // A sink service on the client node.
        let sink = net.add_service(
            client,
            ServiceConfig::default(),
            Box::new(TupleSink::new()),
            &mut eng,
        );
        // Subscribe via a direct message to the ProducerServlet.
        struct Subscriber {
            from: NodeId,
            to: SvcKey,
            sink: SvcKey,
        }
        impl Client for Subscriber {
            fn on_start(&mut self, cx: &mut ClientCx) {
                cx.wake_in(SimDuration::from_secs(70), 0);
            }
            fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
                let m = RgmaMsg::Subscribe {
                    table: "cpuload".into(),
                    sink: self.sink,
                    period_us: 10_000_000,
                };
                let bytes = m.wire_size();
                cx.submit(
                    RequestSpec {
                        from: self.from,
                        to: self.to,
                        payload: Box::new(m),
                        req_bytes: bytes,
                    },
                    0,
                );
            }
        }
        net.add_client(Box::new(Subscriber {
            from: client,
            to: ps,
            sink,
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(200));
        let s = net.service_as::<TupleSink>(sink).unwrap();
        // ~(200-80)/10 = 12 batches of 8 tuples.
        assert!(s.batches >= 10, "batches {}", s.batches);
        assert_eq!(s.tuples, s.batches * 8);
    }
}
