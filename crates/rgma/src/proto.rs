//! Wire messages of the R-GMA model.

use relsql::{SharedRow, Sym};
use simnet::SvcKey;

/// Messages between consumers, servlets and the registry.
pub enum RgmaMsg {
    /// Consumer -> ConsumerServlet: run this SQL query over the virtual
    /// database.
    ConsumerQuery { sql: String },
    /// ConsumerServlet (or a test client) -> Registry: which producers
    /// serve `table`?
    RegistryLookup { table: String },
    /// ProducerServlet -> Registry: advertise a producer.
    RegistryRegister {
        servlet: SvcKey,
        table: String,
        predicate: String,
    },
    /// ConsumerServlet (or a direct client) -> ProducerServlet.
    ProducerQuery { sql: String },
    /// Consumer -> ProducerServlet: start streaming `table` tuples to
    /// `sink` every `period_us` microseconds (push mode).
    Subscribe {
        table: String,
        sink: SvcKey,
        period_us: u64,
    },
    /// ProducerServlet -> subscriber sink: a batch of streamed tuples.
    /// Rows are shared with the producer's table (`Rc` clones), so a
    /// streamed batch costs one pointer per tuple, not a deep copy.
    Stream { table: String, rows: Vec<SharedRow> },
}

impl RgmaMsg {
    /// Approximate size on the wire (HTTP + XML encoding overhead; R-GMA
    /// 1.x spoke XML over HTTP between components).
    pub fn wire_size(&self) -> u64 {
        let body = match self {
            RgmaMsg::ConsumerQuery { sql } | RgmaMsg::ProducerQuery { sql } => sql.len() as u64,
            RgmaMsg::RegistryLookup { table } => table.len() as u64,
            RgmaMsg::RegistryRegister {
                table, predicate, ..
            } => (table.len() + predicate.len()) as u64,
            RgmaMsg::Subscribe { table, .. } => table.len() as u64 + 16,
            RgmaMsg::Stream { rows, .. } => {
                rows.iter()
                    .map(|r| r.iter().map(|v| v.wire_size() + 8).sum::<u64>())
                    .sum::<u64>()
                    + 32
            }
        };
        240 + body // HTTP headers + XML envelope
    }
}

/// Registry answer: the producer servlets holding the table.
pub struct ProducerList {
    pub producers: Vec<SvcKey>,
    pub bytes: u64,
}

/// Query answer: a relational result set.  Columns are interned symbols
/// and rows are shared (`Rc`) with the producer tables they came from —
/// forwarding a result set between servlets never deep-copies tuples.
pub struct SqlResultMsg {
    pub columns: Vec<Sym>,
    pub rows: Vec<SharedRow>,
    pub bytes: u64,
}

impl SqlResultMsg {
    pub fn new(columns: Vec<Sym>, rows: Vec<SharedRow>) -> SqlResultMsg {
        let bytes = 240
            + columns.iter().map(|c| c.len() as u64 + 8).sum::<u64>()
            + rows
                .iter()
                .map(|r| r.iter().map(|v| v.wire_size() + 8).sum::<u64>())
                .sum::<u64>();
        SqlResultMsg {
            columns,
            rows,
            bytes,
        }
    }
}
