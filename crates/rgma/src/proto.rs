//! Wire messages of the R-GMA model.

use relsql::SqlValue;
use simnet::SvcKey;

/// Messages between consumers, servlets and the registry.
pub enum RgmaMsg {
    /// Consumer -> ConsumerServlet: run this SQL query over the virtual
    /// database.
    ConsumerQuery { sql: String },
    /// ConsumerServlet (or a test client) -> Registry: which producers
    /// serve `table`?
    RegistryLookup { table: String },
    /// ProducerServlet -> Registry: advertise a producer.
    RegistryRegister {
        servlet: SvcKey,
        table: String,
        predicate: String,
    },
    /// ConsumerServlet (or a direct client) -> ProducerServlet.
    ProducerQuery { sql: String },
    /// Consumer -> ProducerServlet: start streaming `table` tuples to
    /// `sink` every `period_us` microseconds (push mode).
    Subscribe {
        table: String,
        sink: SvcKey,
        period_us: u64,
    },
    /// ProducerServlet -> subscriber sink: a batch of streamed tuples.
    Stream {
        table: String,
        rows: Vec<Vec<SqlValue>>,
    },
}

impl RgmaMsg {
    /// Approximate size on the wire (HTTP + XML encoding overhead; R-GMA
    /// 1.x spoke XML over HTTP between components).
    pub fn wire_size(&self) -> u64 {
        let body = match self {
            RgmaMsg::ConsumerQuery { sql } | RgmaMsg::ProducerQuery { sql } => sql.len() as u64,
            RgmaMsg::RegistryLookup { table } => table.len() as u64,
            RgmaMsg::RegistryRegister {
                table, predicate, ..
            } => (table.len() + predicate.len()) as u64,
            RgmaMsg::Subscribe { table, .. } => table.len() as u64 + 16,
            RgmaMsg::Stream { rows, .. } => {
                rows.iter()
                    .map(|r| r.iter().map(|v| v.wire_size() + 8).sum::<u64>())
                    .sum::<u64>()
                    + 32
            }
        };
        240 + body // HTTP headers + XML envelope
    }
}

/// Registry answer: the producer servlets holding the table.
pub struct ProducerList {
    pub producers: Vec<SvcKey>,
    pub bytes: u64,
}

/// Query answer: a relational result set.
pub struct SqlResultMsg {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<SqlValue>>,
    pub bytes: u64,
}

impl SqlResultMsg {
    pub fn new(columns: Vec<String>, rows: Vec<Vec<SqlValue>>) -> SqlResultMsg {
        let bytes = 240
            + columns.iter().map(|c| c.len() as u64 + 8).sum::<u64>()
            + rows
                .iter()
                .map(|r| r.iter().map(|v| v.wire_size() + 8).sum::<u64>())
                .sum::<u64>();
        SqlResultMsg {
            columns,
            rows,
            bytes,
        }
    }
}
