//! # gridmon-trace — zero-cost-when-off observability for the simulator
//!
//! The paper's claims are mechanistic (which queue saturates, which
//! handshake dominates, which cache absorbs load), so reproducing its
//! figures credibly needs component-level visibility — without taxing
//! the default figure sweeps.  This crate provides:
//!
//! * [`events`] — the typed event taxonomy: event-loop dispatches, CPU
//!   grant/done/resched, flow start/rate/finish, connection admission and
//!   backlog drops, cache hits/misses, and query *spans* with causal
//!   parent ids whose phases mirror the request lifecycle.
//! * [`tracer`] — the [`Tracer`] trait with a no-op [`NullTracer`] and a
//!   bounded [`RingTracer`] (drop-oldest, counted).
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, time-weighted
//!   gauges and log-bucketed histograms, snapshotted per measurement
//!   window.
//! * [`obs`] — the [`Obs`] handle worlds embed.  Every recording call is
//!   gated on a plain `bool`, so with [`ObsMode::OFF`] an instrumented
//!   site costs one predictable branch (pinned <2 % by the overhead
//!   bench in `crates/bench`).
//! * [`export`] — JSONL, Chrome `trace_event` (for `chrome://tracing` /
//!   Perfetto) and metrics-CSV exporters.
//! * [`inspect`] — parses an exported trace back into a per-phase
//!   latency breakdown, top queues by time-weighted depth and drop
//!   causes; drives the `gridmon-inspect` binary.
//!
//! Determinism contract: tracing observes the simulation and never
//! perturbs it — no RNG draws, no event scheduling — so figure CSVs are
//! byte-identical whatever the [`ObsMode`] (pinned by
//! `tests/parallel_figures.rs`).

pub mod events;
pub mod export;
pub mod inspect;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod tracer;

pub use events::{Ev, Outcome, Phase, SpanId, TraceEvent};
pub use export::{chrome_trace, jsonl, metrics_csv, Span, TraceMeta};
pub use metrics::{MetricRow, MetricsRegistry};
pub use obs::{Obs, ObsMode, ObsReport};
pub use tracer::{NullTracer, RingTracer, Tracer, DEFAULT_RING_CAP};
