//! Named counters, time-weighted gauges and histograms, snapshotted per
//! measurement window.
//!
//! Components register metrics lazily by name (`incr` / `gauge` /
//! `observe` create on first use), so a service crate does not need a
//! registration phase.  `window_begin` marks the start of the paper's
//! measurement window; [`MetricsRegistry::snapshot`] then reports both
//! run totals and in-window values for every metric.

use simcore::stats::Histogram;
use simcore::SimTime;
use std::collections::BTreeMap;

/// Monotonic counter with a window baseline.
#[derive(Debug, Clone, Copy, Default)]
struct Counter {
    total: u64,
    window_base: u64,
}

/// Time-weighted gauge of a piecewise-constant signal (queue depths,
/// runnable counts).  Tracks the full-run integral plus a window
/// baseline so per-window means come out exact.
#[derive(Debug, Clone, Copy)]
struct TwGauge {
    value: f64,
    last: SimTime,
    start: SimTime,
    /// Integral of the signal in value·µs since `start`.
    integral: f64,
    max: f64,
    win_start: Option<SimTime>,
    win_base: f64,
}

impl TwGauge {
    fn new(now: SimTime, value: f64) -> Self {
        TwGauge {
            value,
            last: now,
            start: now,
            integral: 0.0,
            max: value,
            win_start: None,
            win_base: 0.0,
        }
    }

    fn integral_at(&self, now: SimTime) -> f64 {
        let dt = now.as_micros().saturating_sub(self.last.as_micros()) as f64;
        self.integral + self.value * dt
    }

    fn set(&mut self, now: SimTime, value: f64) {
        self.integral = self.integral_at(now);
        self.last = now.max(self.last);
        self.value = value;
        self.max = self.max.max(value);
    }

    fn mark_window(&mut self, now: SimTime) {
        self.integral = self.integral_at(now);
        self.last = now.max(self.last);
        self.win_start = Some(now);
        self.win_base = self.integral;
    }

    /// Time-average over the window (or since first set, pre-window).
    fn mean(&self, now: SimTime) -> f64 {
        let (from, base) = match self.win_start {
            Some(ws) => (ws, self.win_base),
            None => (self.start, 0.0),
        };
        let span = now.as_micros().saturating_sub(from.as_micros()) as f64;
        if span <= 0.0 {
            return self.value;
        }
        (self.integral_at(now) - base) / span
    }
}

/// Histogram cell: sample distribution plus sum/count window baselines
/// so window means are exact even though bucket counts are approximate.
#[derive(Debug, Clone)]
struct HistCell {
    h: Histogram,
    sum: f64,
    count_base: u64,
    sum_base: f64,
}

/// One row of a metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Metric name, e.g. `mds.ldap_searches`.
    pub name: String,
    /// `counter`, `gauge`, `hist` or `value`.
    pub kind: &'static str,
    /// Run total: counter count, gauge last value, histogram sample
    /// count, or the raw value.
    pub total: f64,
    /// In-window delta (counters/histogram counts) or in-window mean
    /// (gauges); equals `total` when no window was marked.
    pub window: f64,
    /// Mean: gauge time-average, histogram in-window sample mean.
    pub mean: f64,
    /// Maximum observed (gauges only; otherwise 0).
    pub max: f64,
    /// Histogram quantiles over the full run (0 for other kinds).
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// The registry all components report into.
///
/// Histograms use a fixed layout (`lo = 1.0`, i.e. samples are expected
/// in microseconds) so per-component histograms can be
/// [`Histogram::merge`]d when aggregating snapshots.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, TwGauge>,
    hists: BTreeMap<String, HistCell>,
    values: BTreeMap<String, f64>,
    window_start: Option<SimTime>,
}

/// Lower edge of registry histograms: 1 µs.
pub const HIST_LO_US: f64 = 1.0;

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter, creating it at zero on first use.
    pub fn incr(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            c.total += n;
        } else {
            self.counters.insert(
                name.to_string(),
                Counter {
                    total: n,
                    window_base: 0,
                },
            );
        }
    }

    /// Set a time-weighted gauge to `value` at `now`.
    pub fn gauge(&mut self, name: &str, now: SimTime, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            g.set(now, value);
        } else {
            self.gauges
                .insert(name.to_string(), TwGauge::new(now, value));
        }
    }

    /// Record one histogram sample (convention: microseconds).
    pub fn observe(&mut self, name: &str, sample_us: f64) {
        if let Some(c) = self.hists.get_mut(name) {
            c.h.record(sample_us);
            c.sum += sample_us;
        } else {
            let mut h = Histogram::new(HIST_LO_US);
            h.record(sample_us);
            self.hists.insert(
                name.to_string(),
                HistCell {
                    h,
                    sum: sample_us,
                    count_base: 0,
                    sum_base: 0.0,
                },
            );
        }
    }

    /// Set a plain value (end-of-run scalars like per-node busy seconds).
    pub fn set_value(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Mark the start of the measurement window: every metric's window
    /// baseline is reset to its current state.
    pub fn window_begin(&mut self, now: SimTime) {
        self.window_start = Some(now);
        for c in self.counters.values_mut() {
            c.window_base = c.total;
        }
        for g in self.gauges.values_mut() {
            g.mark_window(now);
        }
        for c in self.hists.values_mut() {
            c.count_base = c.h.count();
            c.sum_base = c.sum;
        }
    }

    /// Render every metric into sorted rows, evaluating gauges at `now`.
    pub fn snapshot(&self, now: SimTime) -> Vec<MetricRow> {
        let mut rows = Vec::new();
        for (name, c) in &self.counters {
            rows.push(MetricRow {
                name: name.clone(),
                kind: "counter",
                total: c.total as f64,
                window: (c.total - c.window_base) as f64,
                mean: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            });
        }
        for (name, g) in &self.gauges {
            rows.push(MetricRow {
                name: name.clone(),
                kind: "gauge",
                total: g.value,
                window: g.mean(now),
                mean: g.mean(now),
                max: g.max,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            });
        }
        for (name, c) in &self.hists {
            let wn = c.h.count() - c.count_base;
            let wmean = if wn == 0 {
                0.0
            } else {
                (c.sum - c.sum_base) / wn as f64
            };
            rows.push(MetricRow {
                name: name.clone(),
                kind: "hist",
                total: c.h.count() as f64,
                window: wn as f64,
                mean: wmean,
                max: 0.0,
                p50: c.h.quantile(0.5),
                p90: c.h.quantile(0.9),
                p99: c.h.quantile(0.99),
            });
        }
        for (name, &v) in &self.values {
            rows.push(MetricRow {
                name: name.clone(),
                kind: "value",
                total: v,
                window: v,
                mean: v,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            });
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    fn row<'a>(rows: &'a [MetricRow], name: &str) -> &'a MetricRow {
        rows.iter().find(|r| r.name == name).unwrap()
    }

    #[test]
    fn counter_window_delta() {
        let mut m = MetricsRegistry::new();
        m.incr("c", 3);
        m.window_begin(t(100));
        m.incr("c", 4);
        let rows = m.snapshot(t(200));
        let r = row(&rows, "c");
        assert_eq!((r.total, r.window), (7.0, 4.0));
    }

    #[test]
    fn gauge_window_mean_is_time_weighted() {
        let mut m = MetricsRegistry::new();
        m.gauge("g", t(0), 10.0); // ignored by window mean
        m.window_begin(t(100));
        m.gauge("g", t(150), 2.0); // 10.0 for 50µs, then 2.0 for 50µs
        let rows = m.snapshot(t(200));
        let r = row(&rows, "g");
        assert!((r.mean - 6.0).abs() < 1e-9, "mean {}", r.mean);
        assert_eq!(r.max, 10.0);
        assert_eq!(r.total, 2.0);
    }

    #[test]
    fn hist_window_mean_and_quantiles() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 1000.0);
        m.window_begin(t(10));
        m.observe("h", 2000.0);
        m.observe("h", 4000.0);
        let rows = m.snapshot(t(20));
        let r = row(&rows, "h");
        assert_eq!(r.total, 3.0);
        assert_eq!(r.window, 2.0);
        assert!((r.mean - 3000.0).abs() < 1e-9);
        assert!(r.p50 > 0.0 && r.p50 <= r.p99);
    }

    #[test]
    fn snapshot_is_sorted_and_values_pass_through() {
        let mut m = MetricsRegistry::new();
        m.set_value("z", 9.0);
        m.incr("a", 1);
        m.gauge("m", t(0), 1.0);
        let rows = m.snapshot(t(1));
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        assert_eq!(row(&rows, "z").total, 9.0);
        assert!(!m.is_empty());
    }
}
