//! Trace inspection: turn a Chrome-trace JSON document back into the
//! summary a human wants — per-phase latency breakdown, top queues by
//! time-weighted depth, and drop causes — plus the self-check the CI
//! fixture runs.

use crate::json::{self, Val};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One phase's share of root-query latency.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    pub phase: String,
    /// Mean µs spent in this phase per included query.
    pub mean_us: f64,
    /// Fraction of the summed phase time.
    pub share: f64,
}

/// One queue's time-weighted depth statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRow {
    pub name: String,
    pub mean_depth: f64,
    pub max_depth: f64,
}

/// One drop/instant cause and how often it fired.
#[derive(Debug, Clone, PartialEq)]
pub struct CauseRow {
    pub cause: String,
    pub count: u64,
}

/// Everything `gridmon-inspect` prints about one trace.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    pub key: String,
    pub x: f64,
    pub seed: u64,
    pub window_us: (u64, u64),
    /// All spans in the trace (including children and one-ways).
    pub spans_total: u64,
    /// Root, non-oneway, successful spans ending inside the window —
    /// the population the figure's mean response time is computed over.
    pub queries: u64,
    /// Mean duration of those spans, µs.
    pub mean_rt_us: f64,
    /// Sum of per-phase means, µs (should equal `mean_rt_us`).
    pub phase_sum_us: f64,
    /// The mean response time the figure pipeline reported, µs.
    pub reported_rt_us: f64,
    pub reported_completions: u64,
    pub refused: u64,
    pub events_dropped: u64,
    pub dispatch_count: u64,
    pub phases: Vec<PhaseRow>,
    pub queues: Vec<QueueRow>,
    pub causes: Vec<CauseRow>,
}

fn need_f64(v: &Val, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Val::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// Parse a Chrome-trace JSON document produced by
/// [`crate::export::chrome_trace`] into a summary.
pub fn summarize(trace_json: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(trace_json)?;
    let meta = doc
        .get("gridmon")
        .ok_or_else(|| "not a gridmon trace: no `gridmon` metadata".to_string())?;
    let ws = need_f64(meta, "window_start_us")? as u64;
    let we = need_f64(meta, "window_end_us")? as u64;
    let events = doc
        .get("traceEvents")
        .and_then(Val::as_arr)
        .ok_or_else(|| "no traceEvents array".to_string())?;

    // Pass 1: which spans count as measured queries (root, two-way, ok,
    // completing inside the window — the StatsHub inclusion rule).
    let mut included: BTreeMap<u64, bool> = BTreeMap::new();
    let mut spans_total = 0u64;
    let mut rt_sum = 0.0f64;
    let mut outcome_counts: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if e.get("cat").and_then(Val::as_str) != Some("span") {
            continue;
        }
        spans_total += 1;
        let args = e.get("args").ok_or("span without args")?;
        let outcome = args
            .get("outcome")
            .and_then(Val::as_str)
            .unwrap_or("unknown");
        let root = args.get("root").and_then(Val::as_bool).unwrap_or(false);
        let oneway = args.get("oneway").and_then(Val::as_bool).unwrap_or(false);
        if root && !oneway {
            *outcome_counts.entry(outcome.to_string()).or_insert(0) += 1;
        }
        let ts = need_f64(e, "ts")?;
        let dur = need_f64(e, "dur")?;
        let end = ts + dur;
        if root && !oneway && outcome == "ok" && end >= ws as f64 && end < we as f64 {
            let id = args
                .get("span")
                .and_then(Val::as_f64)
                .ok_or("span without id")? as u64;
            included.insert(id, true);
            rt_sum += dur;
        }
    }
    let queries = included.len() as u64;

    // Pass 2: phase slices of included spans.
    let mut phase_sums: BTreeMap<String, f64> = BTreeMap::new();
    for e in events {
        if e.get("cat").and_then(Val::as_str) != Some("phase") {
            continue;
        }
        let id = e
            .get("args")
            .and_then(|a| a.get("span"))
            .and_then(Val::as_f64)
            .ok_or("phase slice without span id")? as u64;
        if !included.contains_key(&id) {
            continue;
        }
        let dur = need_f64(e, "dur")?;
        let name = e
            .get("name")
            .and_then(Val::as_str)
            .ok_or("phase slice without name")?;
        *phase_sums.entry(name.to_string()).or_insert(0.0) += dur;
    }

    // Pass 3: counter tracks → time-weighted depth over the trace; the
    // signal holds its value between updates and is integrated up to the
    // window end.
    struct Track {
        first: f64,
        last: f64,
        value: f64,
        area: f64,
        max: f64,
    }
    let mut tracks: BTreeMap<String, Track> = BTreeMap::new();
    let mut causes: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        match e.get("ph").and_then(Val::as_str) {
            Some("C") => {
                let name = e.get("name").and_then(Val::as_str).unwrap_or("?");
                let ts = need_f64(e, "ts")?;
                let depth = e
                    .get("args")
                    .and_then(|a| a.get("depth"))
                    .and_then(Val::as_f64)
                    .unwrap_or(0.0);
                if let Some(t) = tracks.get_mut(name) {
                    t.area += t.value * (ts - t.last).max(0.0);
                    t.last = ts;
                    t.value = depth;
                    t.max = t.max.max(depth);
                } else {
                    tracks.insert(
                        name.to_string(),
                        Track {
                            first: ts,
                            last: ts,
                            value: depth,
                            area: 0.0,
                            max: depth,
                        },
                    );
                }
            }
            Some("i") => {
                let name = e.get("name").and_then(Val::as_str).unwrap_or("?");
                *causes.entry(name.to_string()).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    let mut queues: Vec<QueueRow> = tracks
        .into_iter()
        .map(|(name, t)| {
            let horizon = (we as f64).max(t.last);
            let span = horizon - t.first;
            let area = t.area + t.value * (horizon - t.last);
            QueueRow {
                name,
                mean_depth: if span > 0.0 { area / span } else { t.value },
                max_depth: t.max,
            }
        })
        .collect();
    queues.sort_by(|a, b| {
        b.mean_depth
            .total_cmp(&a.mean_depth)
            .then(a.name.cmp(&b.name))
    });

    let mean_rt_us = if queries == 0 {
        0.0
    } else {
        rt_sum / queries as f64
    };
    let phase_sum_us: f64 = if queries == 0 {
        0.0
    } else {
        phase_sums.values().sum::<f64>() / queries as f64
    };
    let mut phases: Vec<PhaseRow> = phase_sums
        .iter()
        .map(|(name, &sum)| PhaseRow {
            phase: name.clone(),
            mean_us: if queries == 0 {
                0.0
            } else {
                sum / queries as f64
            },
            share: if phase_sum_us > 0.0 && queries > 0 {
                (sum / queries as f64) / phase_sum_us
            } else {
                0.0
            },
        })
        .collect();
    phases.sort_by(|a, b| b.mean_us.total_cmp(&a.mean_us).then(a.phase.cmp(&b.phase)));

    let mut cause_rows: Vec<CauseRow> = causes
        .into_iter()
        .map(|(cause, count)| CauseRow { cause, count })
        .collect();
    for (outcome, count) in &outcome_counts {
        if outcome != "ok" {
            cause_rows.push(CauseRow {
                cause: format!("span outcome: {outcome}"),
                count: *count,
            });
        }
    }
    cause_rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.cause.cmp(&b.cause)));

    Ok(TraceSummary {
        key: meta
            .get("key")
            .and_then(Val::as_str)
            .unwrap_or("?")
            .to_string(),
        x: need_f64(meta, "x")?,
        seed: need_f64(meta, "seed")? as u64,
        window_us: (ws, we),
        spans_total,
        queries,
        mean_rt_us,
        phase_sum_us,
        reported_rt_us: need_f64(meta, "mean_response_time_us")?,
        reported_completions: need_f64(meta, "completions")? as u64,
        refused: need_f64(meta, "refused")? as u64,
        events_dropped: need_f64(meta, "events_dropped")? as u64,
        dispatch_count: need_f64(meta, "dispatch_count")? as u64,
        phases,
        queues,
        causes: cause_rows,
    })
}

/// Render the summary as the text report the `gridmon-inspect` bin prints.
pub fn render(s: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace    {}  (x = {}, seed = {})", s.key, s.x, s.seed);
    let _ = writeln!(
        out,
        "window   [{:.3} s, {:.3} s]   events dropped: {}   dispatches: {}",
        s.window_us.0 as f64 / 1e6,
        s.window_us.1 as f64 / 1e6,
        s.events_dropped,
        s.dispatch_count
    );
    let _ = writeln!(
        out,
        "spans    {} total; {} measured queries (root, two-way, ok, in window)",
        s.spans_total, s.queries
    );
    let _ = writeln!(
        out,
        "latency  mean {:.1} µs from spans vs {:.1} µs reported ({} completions reported)",
        s.mean_rt_us, s.reported_rt_us, s.reported_completions
    );
    out.push_str("\nper-phase breakdown (mean µs per query):\n");
    for p in &s.phases {
        let _ = writeln!(
            out,
            "  {:<14} {:>12.1}  {:>5.1}%",
            p.phase,
            p.mean_us,
            p.share * 100.0
        );
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>12.1}  (sum; span mean {:.1})",
        "total", s.phase_sum_us, s.mean_rt_us
    );
    out.push_str("\ntop queues by time-weighted depth:\n");
    if s.queues.is_empty() {
        out.push_str("  (no counter tracks recorded)\n");
    }
    for q in s.queues.iter().take(8) {
        let _ = writeln!(
            out,
            "  {:<28} mean {:>8.3}  max {:>6.0}",
            q.name, q.mean_depth, q.max_depth
        );
    }
    out.push_str("\ndrops & notable events:\n");
    if s.causes.is_empty() && s.refused == 0 {
        out.push_str("  (none)\n");
    }
    if s.refused > 0 {
        let _ = writeln!(out, "  {:<28} {:>8}", "reported refused conns", s.refused);
    }
    for c in s.causes.iter().take(10) {
        let _ = writeln!(out, "  {:<28} {:>8}", c.cause, c.count);
    }
    out
}

/// The acceptance self-check: the per-phase breakdown must sum (±1 %) to
/// the span-level mean response time, which must itself match (±1 %) the
/// mean the figure pipeline reported for the point.
pub fn self_check(s: &TraceSummary) -> Result<(), String> {
    if s.queries == 0 {
        return Err("self-check: no measured queries in trace".into());
    }
    let phase_err = rel_err(s.phase_sum_us, s.mean_rt_us);
    if phase_err > 0.01 {
        return Err(format!(
            "self-check: phase sum {:.1} µs vs span mean {:.1} µs differs by {:.2}% (> 1%)",
            s.phase_sum_us,
            s.mean_rt_us,
            phase_err * 100.0
        ));
    }
    let reported_err = rel_err(s.mean_rt_us, s.reported_rt_us);
    if reported_err > 0.01 {
        return Err(format!(
            "self-check: span mean {:.1} µs vs reported mean {:.1} µs differs by {:.2}% (> 1%)",
            s.mean_rt_us,
            s.reported_rt_us,
            reported_err * 100.0
        ));
    }
    Ok(())
}

fn rel_err(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom <= 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Ev, Outcome, Phase, TraceEvent};
    use crate::export::{chrome_trace, TraceMeta};
    use simcore::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    fn span_events(id: u64, begin: u64, end: u64, mid: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: t(begin),
                ev: Ev::SpanBegin {
                    span: id,
                    parent: None,
                    svc: 0,
                    oneway: false,
                },
            },
            TraceEvent {
                at: t(begin),
                ev: Ev::SpanPhase {
                    span: id,
                    phase: Phase::ReqFlow,
                },
            },
            TraceEvent {
                at: t(mid),
                ev: Ev::SpanPhase {
                    span: id,
                    phase: Phase::ServerCpu,
                },
            },
            TraceEvent {
                at: t(end),
                ev: Ev::SpanEnd {
                    span: id,
                    outcome: Outcome::Ok,
                },
            },
        ]
    }

    fn meta(reported_us: f64) -> TraceMeta {
        TraceMeta {
            key: "set1/test/x=1".into(),
            x: 1.0,
            seed: 7,
            window_start: t(0),
            window_end: t(10_000),
            mean_response_time_us: reported_us,
            completions: 2,
            refused: 0,
            services: vec!["gris".into()],
            nodes: vec!["host".into()],
        }
    }

    #[test]
    fn summary_round_trips_and_self_checks() {
        let mut evs = span_events(1, 100, 300, 150); // 200 µs
        evs.extend(span_events(2, 400, 800, 500)); // 400 µs
        evs.push(TraceEvent {
            at: t(120),
            ev: Ev::ConnQueue { svc: 0, depth: 3 },
        });
        let doc = chrome_trace(&meta(300.0), &evs, 0);
        let s = summarize(&doc).unwrap();
        assert_eq!(s.queries, 2);
        assert!((s.mean_rt_us - 300.0).abs() < 1e-9);
        assert!((s.phase_sum_us - 300.0).abs() < 1e-9);
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.queues.len(), 1);
        self_check(&s).unwrap();
        let text = render(&s);
        assert!(text.contains("per-phase breakdown"));
        assert!(text.contains("server_cpu"));
    }

    #[test]
    fn self_check_rejects_mismatched_report() {
        let evs = span_events(1, 100, 300, 150);
        let doc = chrome_trace(&meta(900.0), &evs, 0);
        let s = summarize(&doc).unwrap();
        let err = self_check(&s).unwrap_err();
        assert!(err.contains("reported"), "{err}");
    }

    #[test]
    fn spans_outside_window_or_failed_are_excluded() {
        let mut evs = span_events(1, 100, 300, 150);
        // Ends after the window: excluded.
        evs.extend(span_events(2, 9_000, 20_000, 9_500));
        // Refused root span: excluded from latency, counted as a cause.
        evs.push(TraceEvent {
            at: t(500),
            ev: Ev::SpanBegin {
                span: 3,
                parent: None,
                svc: 0,
                oneway: false,
            },
        });
        evs.push(TraceEvent {
            at: t(600),
            ev: Ev::SpanEnd {
                span: 3,
                outcome: Outcome::Refused,
            },
        });
        let doc = chrome_trace(&meta(200.0), &evs, 0);
        let s = summarize(&doc).unwrap();
        assert_eq!(s.queries, 1);
        assert!((s.mean_rt_us - 200.0).abs() < 1e-9);
        assert!(s
            .causes
            .iter()
            .any(|c| c.cause == "span outcome: refused" && c.count == 1));
    }

    #[test]
    fn summarize_rejects_foreign_json() {
        assert!(summarize("{}").is_err());
        assert!(summarize("not json").is_err());
    }
}
