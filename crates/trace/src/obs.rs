//! The observability handle the simulated world carries.
//!
//! `Obs` is the single object instrumentation sites talk to.  The
//! zero-cost-when-off contract lives here: every recording method first
//! checks a plain `bool`, so with observability off (the default) an
//! instrumented site costs one predictable branch — no virtual dispatch,
//! no allocation, no formatting.  The overhead bench in `crates/bench`
//! pins this at < 2 % on a full figure-sweep point.

use crate::events::{Ev, TraceEvent};
use crate::metrics::{MetricRow, MetricsRegistry};
use crate::tracer::{NullTracer, RingTracer, Tracer};
use simcore::SimTime;

/// Which observability features are enabled for a run.  Part of a run's
/// identity: the runner folds the fingerprint into its cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsMode {
    /// Record typed events into a ring buffer.
    pub trace: bool,
    /// Maintain the metrics registry.
    pub metrics: bool,
}

impl ObsMode {
    /// Everything off — the production default.
    pub const OFF: ObsMode = ObsMode {
        trace: false,
        metrics: false,
    };

    /// Everything on.
    pub const FULL: ObsMode = ObsMode {
        trace: true,
        metrics: true,
    };

    /// Any feature enabled?
    pub fn enabled(self) -> bool {
        self.trace || self.metrics
    }

    /// Stable string for cache keys and report headers.
    pub fn fingerprint(self) -> String {
        format!(
            "obs=trace:{},metrics:{}",
            u8::from(self.trace),
            u8::from(self.metrics)
        )
    }
}

/// Everything observability collects over one run.
#[derive(Debug)]
pub struct ObsReport {
    /// The mode the run used.
    pub mode: ObsMode,
    /// Recorded events in dispatch order (empty unless tracing).
    pub events: Vec<TraceEvent>,
    /// Events the ring had to drop (oldest first).
    pub dropped: u64,
    /// Metrics snapshot at harvest time (empty unless metrics).
    pub metrics: Vec<MetricRow>,
}

/// The observability sink embedded in the simulated world.
pub struct Obs {
    tracing: bool,
    metrics_on: bool,
    mode: ObsMode,
    tracer: Box<dyn Tracer>,
    /// The metrics registry (public so harvesters can inject values).
    pub metrics: MetricsRegistry,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("mode", &self.mode).finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::off()
    }
}

impl Obs {
    /// Fully disabled observability (every recording call is a no-op
    /// behind one branch).
    pub fn off() -> Self {
        Obs::from_mode(ObsMode::OFF)
    }

    /// Build the sink a mode asks for.
    pub fn from_mode(mode: ObsMode) -> Self {
        let tracer: Box<dyn Tracer> = if mode.trace {
            Box::<RingTracer>::default()
        } else {
            Box::new(NullTracer)
        };
        Obs {
            tracing: mode.trace,
            metrics_on: mode.metrics,
            mode,
            tracer,
            metrics: MetricsRegistry::new(),
        }
    }

    /// The mode this sink was built with.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Is event tracing on?
    #[inline(always)]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Is the metrics registry live?
    #[inline(always)]
    pub fn metrics_on(&self) -> bool {
        self.metrics_on
    }

    /// Anything enabled?
    #[inline(always)]
    pub fn on(&self) -> bool {
        self.tracing || self.metrics_on
    }

    /// Record an event (no-op unless tracing).
    #[inline(always)]
    pub fn ev(&mut self, at: SimTime, ev: Ev) {
        if self.tracing {
            self.tracer.record(at, ev);
        }
    }

    /// Record a lazily-built event: `f` only runs when tracing, so
    /// argument computation (lookups, counts) costs nothing when off.
    #[inline(always)]
    pub fn ev_with(&mut self, at: SimTime, f: impl FnOnce() -> Ev) {
        if self.tracing {
            self.tracer.record(at, f());
        }
    }

    /// Bump a counter (no-op unless metrics are on).
    #[inline(always)]
    pub fn incr(&mut self, name: &str, n: u64) {
        if self.metrics_on {
            self.metrics.incr(name, n);
        }
    }

    /// Set a time-weighted gauge (no-op unless metrics are on).
    #[inline(always)]
    pub fn gauge(&mut self, name: &str, now: SimTime, value: f64) {
        if self.metrics_on {
            self.metrics.gauge(name, now, value);
        }
    }

    /// Record a histogram sample in µs (no-op unless metrics are on).
    #[inline(always)]
    pub fn observe(&mut self, name: &str, sample_us: f64) {
        if self.metrics_on {
            self.metrics.observe(name, sample_us);
        }
    }

    /// Mark the start of the measurement window.
    pub fn window_begin(&mut self, now: SimTime) {
        if self.metrics_on {
            self.metrics.window_begin(now);
        }
    }

    /// Harvest the run: drain events and snapshot metrics at `now`.
    /// Returns `None` when observability was off.
    pub fn finish(&mut self, now: SimTime) -> Option<ObsReport> {
        if !self.on() {
            return None;
        }
        let (events, dropped) = self.tracer.take();
        Some(ObsReport {
            mode: self.mode,
            events,
            dropped,
            metrics: self.metrics.snapshot(now),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing_and_reports_none() {
        let mut o = Obs::off();
        assert!(!o.on());
        o.ev(SimTime(1), Ev::Dispatch { seq: 1 });
        o.incr("x", 1);
        o.observe("h", 5.0);
        assert!(o.finish(SimTime(2)).is_none());
        assert!(o.metrics.is_empty());
    }

    #[test]
    fn full_mode_collects_both() {
        let mut o = Obs::from_mode(ObsMode::FULL);
        o.ev(SimTime(1), Ev::Dispatch { seq: 1 });
        o.ev_with(SimTime(2), || Ev::ConnDrop { svc: 0 });
        o.incr("drops", 1);
        let r = o.finish(SimTime(3)).unwrap();
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.metrics.len(), 1);
        assert_eq!(r.mode, ObsMode::FULL);
    }

    #[test]
    fn metrics_only_mode_skips_events() {
        let mut o = Obs::from_mode(ObsMode {
            trace: false,
            metrics: true,
        });
        let mut lazily_built = false;
        o.ev_with(SimTime(1), || {
            lazily_built = true;
            Ev::ConnDrop { svc: 0 }
        });
        assert!(
            !lazily_built,
            "event closures must not run when not tracing"
        );
        o.incr("c", 2);
        let r = o.finish(SimTime(2)).unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.metrics.len(), 1);
    }

    #[test]
    fn fingerprints_are_distinct() {
        let all: Vec<String> = [
            ObsMode::OFF,
            ObsMode::FULL,
            ObsMode {
                trace: true,
                metrics: false,
            },
            ObsMode {
                trace: false,
                metrics: true,
            },
        ]
        .iter()
        .map(|m| m.fingerprint())
        .collect();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }
}
