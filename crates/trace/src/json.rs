//! A minimal JSON reader (and string escaper) so the inspector can parse
//! Chrome traces without external dependencies.
//!
//! Handles the full JSON grammar the exporters emit (objects, arrays,
//! strings with escapes, numbers, booleans, null) plus `\uXXXX` escapes
//! with surrogate pairs.  Object keys keep insertion order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape `s` as the body of a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Val, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(b'n') => self.literal("null", Val::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Val::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad code point at byte {start}"))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes verbatim.
                    let run_start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[run_start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Val::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}— λ 🚀";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_decode() {
        // U+1F680 encoded as a \u surrogate pair.
        assert_eq!(
            parse(r#""\ud83d\ude80""#).unwrap().as_str(),
            Some("\u{1F680}")
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("nul").is_err());
    }
}
