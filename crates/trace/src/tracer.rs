//! Tracer implementations: a no-op sink and a bounded ring buffer.

use crate::events::{Ev, TraceEvent};
use simcore::SimTime;
use std::collections::VecDeque;

/// Default ring capacity (events).  Roughly 50 MB of `TraceEvent`s —
/// enough for every event of a quick-profile sweep point; older events
/// are dropped (and counted) beyond that.
pub const DEFAULT_RING_CAP: usize = 1 << 21;

/// Sink for simulation events.
///
/// `Send` so a tracer can live inside a world that sweep workers move
/// across threads.  Implementations must preserve arrival order: the
/// simulator emits events in deterministic dispatch order and the
/// exporters rely on it.
pub trait Tracer: Send {
    /// Record one event at simulation time `at`.
    fn record(&mut self, at: SimTime, ev: Ev);
    /// Drain recorded events, returning `(events, dropped_count)` and
    /// leaving the tracer empty.
    fn take(&mut self) -> (Vec<TraceEvent>, u64);
}

/// Discards everything.  [`crate::Obs`] never even virtual-dispatches
/// into a tracer when tracing is off, so with `NullTracer` installed the
/// instrumentation reduces to one branch per site.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn record(&mut self, _at: SimTime, _ev: Ev) {}

    fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        (Vec::new(), 0)
    }
}

/// Bounded ring of events: drops the *oldest* events once full, so the
/// tail of a run (the measurement window) survives, and counts what it
/// dropped.
#[derive(Debug)]
pub struct RingTracer {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl RingTracer {
    /// Ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingTracer {
            buf: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Default for RingTracer {
    fn default() -> Self {
        RingTracer::new(DEFAULT_RING_CAP)
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn record(&mut self, at: SimTime, ev: Ev) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent { at, ev });
    }

    fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        let dropped = self.dropped;
        self.dropped = 0;
        (std::mem::take(&mut self.buf).into(), dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    #[test]
    fn ring_preserves_order_and_drops_oldest() {
        let mut r = RingTracer::new(3);
        for seq in 0..5 {
            r.record(t(seq), Ev::Dispatch { seq });
        }
        let (evs, dropped) = r.take();
        assert_eq!(dropped, 2);
        let seqs: Vec<u64> = evs
            .iter()
            .map(|e| match e.ev {
                Ev::Dispatch { seq } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(r.is_empty());
        // The drop counter resets with each take.
        r.record(t(9), Ev::Dispatch { seq: 9 });
        let (evs, dropped) = r.take();
        assert_eq!((evs.len(), dropped), (1, 0));
    }

    #[test]
    fn null_tracer_yields_nothing() {
        let mut n = NullTracer;
        n.record(t(1), Ev::Dispatch { seq: 1 });
        assert_eq!(n.take(), (Vec::new(), 0));
    }
}
