//! Exporters: JSONL event log, Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` and Perfetto), and a per-point metrics CSV.
//!
//! Chrome-trace layout:
//! * **pid 1 "query spans"** — one tid per completed span.  Each span
//!   gets an `X` slice named `span` carrying its identity (span/parent
//!   ids, service, outcome, root flag), plus one `X` slice per lifecycle
//!   phase so a query's latency decomposes visually into the phases the
//!   paper argues about.
//! * **pid 2 "queues + events"** — `C` counter tracks for queue depths
//!   and runnable counts; `i` instants for drops, handshakes and cache
//!   hits/misses.
//! * **pid 3 "flows"** — one `X` slice per network flow.
//!
//! Event-loop `Dispatch` events are *not* exported to the Chrome view
//! (they would dwarf everything else); they stay in the JSONL log and
//! are counted in the top-level `gridmon.dispatch_count` field.

use crate::events::{Ev, Phase, TraceEvent};
use crate::json::escape;
use crate::metrics::MetricRow;
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Run-level context stamped into a trace file so the inspector can
/// cross-check the trace against the figure measurement it came from.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Sweep-point key, e.g. `set1/MDS users/x=10`.
    pub key: String,
    /// The x-value of the point.
    pub x: f64,
    /// The derived per-point seed.
    pub seed: u64,
    /// Measurement window start.
    pub window_start: SimTime,
    /// Measurement window end.
    pub window_end: SimTime,
    /// The mean response time the figure pipeline reported, in µs.
    pub mean_response_time_us: f64,
    /// Completed-query count the figure pipeline reported.
    pub completions: u64,
    /// Refused-connection count the figure pipeline reported.
    pub refused: u64,
    /// Service labels, indexed by service slot.
    pub services: Vec<String>,
    /// Node names, indexed by node id.
    pub nodes: Vec<String>,
}

/// A reassembled query span.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: u64,
    pub parent: Option<u64>,
    pub svc: u32,
    pub oneway: bool,
    pub begin: SimTime,
    /// `None` while still in flight at harvest time.
    pub end: Option<SimTime>,
    pub outcome: Option<&'static str>,
    /// `(phase, entered_at)` transitions, in order.
    pub phases: Vec<(Phase, SimTime)>,
}

/// Reassemble spans from the event stream (dispatch order).
pub fn assemble_spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for e in events {
        match e.ev {
            Ev::SpanBegin {
                span,
                parent,
                svc,
                oneway,
            } => {
                index.insert(span, spans.len());
                spans.push(Span {
                    id: span,
                    parent,
                    svc,
                    oneway,
                    begin: e.at,
                    end: None,
                    outcome: None,
                    phases: Vec::new(),
                });
            }
            Ev::SpanPhase { span, phase } => {
                if let Some(&i) = index.get(&span) {
                    spans[i].phases.push((phase, e.at));
                }
            }
            Ev::SpanEnd { span, outcome } => {
                if let Some(&i) = index.get(&span) {
                    spans[i].end = Some(e.at);
                    spans[i].outcome = Some(outcome.name());
                }
            }
            _ => {}
        }
    }
    spans
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Serialize events as JSONL: one `{"ts":…,"ev":"…",…}` object per line.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"ts\":{},\"ev\":\"{}\"",
            e.at.as_micros(),
            e.ev.name()
        );
        match e.ev {
            Ev::Dispatch { seq } => {
                let _ = write!(out, ",\"seq\":{seq}");
            }
            Ev::SpanBegin {
                span,
                parent,
                svc,
                oneway,
            } => {
                let _ = write!(out, ",\"span\":{span},\"parent\":");
                match parent {
                    Some(p) => {
                        let _ = write!(out, "{p}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"svc\":{svc},\"oneway\":{oneway}");
            }
            Ev::SpanPhase { span, phase } => {
                let _ = write!(out, ",\"span\":{span},\"phase\":\"{}\"", phase.name());
            }
            Ev::SpanEnd { span, outcome } => {
                let _ = write!(out, ",\"span\":{span},\"outcome\":\"{}\"", outcome.name());
            }
            Ev::ConnQueue { svc, depth } | Ev::WorkerQueue { svc, depth } => {
                let _ = write!(out, ",\"svc\":{svc},\"depth\":{depth}");
            }
            Ev::LockQueue { lock, depth } => {
                let _ = write!(out, ",\"lock\":{lock},\"depth\":{depth}");
            }
            Ev::ConnDrop { svc }
            | Ev::GsiHandshake { svc }
            | Ev::CacheHit { svc }
            | Ev::CacheMiss { svc }
            | Ev::FaultCrash { svc }
            | Ev::FaultRestart { svc }
            | Ev::FaultFreeze { svc }
            | Ev::FaultDropBurst { svc } => {
                let _ = write!(out, ",\"svc\":{svc}");
            }
            Ev::FaultPartition { link } | Ev::FaultHeal { link } => {
                let _ = write!(out, ",\"link\":{link}");
            }
            Ev::FlowStart { flow, bytes } => {
                let _ = write!(out, ",\"flow\":{flow},\"bytes\":{bytes}");
            }
            Ev::FlowRate { flow, bps } => {
                let _ = write!(out, ",\"flow\":{flow},\"bps\":");
                push_f64(&mut out, bps);
            }
            Ev::FlowEnd { flow } => {
                let _ = write!(out, ",\"flow\":{flow}");
            }
            Ev::CpuGrant { node, span } | Ev::CpuDone { node, span } => {
                let _ = write!(out, ",\"node\":{node},\"span\":{span}");
            }
            Ev::CpuResched { node, runnable } => {
                let _ = write!(out, ",\"node\":{node},\"runnable\":{runnable}");
            }
        }
        out.push_str("}\n");
    }
    out
}

fn svc_label(meta: &TraceMeta, svc: u32) -> String {
    meta.services
        .get(svc as usize)
        .cloned()
        .unwrap_or_else(|| format!("svc{svc}"))
}

fn node_label(meta: &TraceMeta, node: u32) -> String {
    meta.nodes
        .get(node as usize)
        .cloned()
        .unwrap_or_else(|| format!("node{node}"))
}

/// Render a full Chrome `trace_event` JSON document.
pub fn chrome_trace(meta: &TraceMeta, events: &[TraceEvent], dropped: u64) -> String {
    let spans = assemble_spans(events);
    let dispatch_count = events
        .iter()
        .filter(|e| matches!(e.ev, Ev::Dispatch { .. }))
        .count() as u64;

    let mut out = String::with_capacity(events.len() * 64 + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"gridmon\":{");
    let _ = write!(out, "\"key\":\"{}\",\"x\":", escape(&meta.key));
    push_f64(&mut out, meta.x);
    let _ = write!(
        out,
        ",\"seed\":{},\"window_start_us\":{},\"window_end_us\":{},\"mean_response_time_us\":",
        meta.seed,
        meta.window_start.as_micros(),
        meta.window_end.as_micros()
    );
    push_f64(&mut out, meta.mean_response_time_us);
    let _ = write!(
        out,
        ",\"completions\":{},\"refused\":{},\"events\":{},\"events_dropped\":{dropped},\"dispatch_count\":{dispatch_count}",
        meta.completions,
        meta.refused,
        events.len()
    );
    out.push_str(",\"services\":[");
    for (i, s) in meta.services.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(s));
    }
    out.push_str("],\"nodes\":[");
    for (i, n) in meta.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(n));
    }
    out.push_str("]},\"traceEvents\":[");

    let mut first = true;
    let mut emit = |piece: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&piece);
    };

    // Process names.
    for (pid, name) in [(1, "query spans"), (2, "queues + events"), (3, "flows")] {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
    }

    // Completed spans: identity slice plus one slice per phase segment.
    let mut tid = 0u64;
    for s in &spans {
        let Some(end) = s.end else { continue };
        tid += 1;
        let begin_us = s.begin.as_micros();
        let dur = end.as_micros() - begin_us;
        let mut args = String::new();
        let _ = write!(args, "{{\"span\":{},\"parent\":", s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(args, "{p}");
            }
            None => args.push_str("null"),
        }
        let _ = write!(
            args,
            ",\"svc\":\"{}\",\"oneway\":{},\"outcome\":\"{}\",\"root\":{}}}",
            escape(&svc_label(meta, s.svc)),
            s.oneway,
            s.outcome.unwrap_or("unknown"),
            s.parent.is_none()
        );
        emit(
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{begin_us},\"dur\":{dur},\"name\":\"span\",\"cat\":\"span\",\"args\":{args}}}"
            ),
            &mut out,
        );
        for (i, &(phase, at)) in s.phases.iter().enumerate() {
            let seg_end = s
                .phases
                .get(i + 1)
                .map(|&(_, t)| t)
                .unwrap_or(end)
                .as_micros();
            let at_us = at.as_micros();
            emit(
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{at_us},\"dur\":{},\"name\":\"{}\",\"cat\":\"phase\",\"args\":{{\"span\":{}}}}}",
                    seg_end - at_us,
                    phase.name(),
                    s.id
                ),
                &mut out,
            );
        }
    }

    // Counters and instants.
    for e in events {
        let ts = e.at.as_micros();
        match e.ev {
            Ev::ConnQueue { svc, depth } => emit(
                format!(
                    "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"name\":\"conn_backlog {}\",\"args\":{{\"depth\":{depth}}}}}",
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::WorkerQueue { svc, depth } => emit(
                format!(
                    "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"name\":\"worker_queue {}\",\"args\":{{\"depth\":{depth}}}}}",
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::LockQueue { lock, depth } => emit(
                format!(
                    "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"name\":\"lock_queue {lock}\",\"args\":{{\"depth\":{depth}}}}}"
                ),
                &mut out,
            ),
            Ev::CpuResched { node, runnable } => emit(
                format!(
                    "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"name\":\"cpu_runnable {}\",\"args\":{{\"depth\":{runnable}}}}}",
                    escape(&node_label(meta, node))
                ),
                &mut out,
            ),
            Ev::ConnDrop { svc } => emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\"name\":\"conn_drop {}\"}}",
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::GsiHandshake { svc } => emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\"name\":\"gsi_handshake {}\"}}",
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::CacheHit { svc } => emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\"name\":\"cache_hit {}\"}}",
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::CacheMiss { svc } => emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\"name\":\"cache_miss {}\"}}",
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::FaultCrash { svc }
            | Ev::FaultRestart { svc }
            | Ev::FaultFreeze { svc }
            | Ev::FaultDropBurst { svc } => emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\"name\":\"{} {}\"}}",
                    e.ev.name(),
                    escape(&svc_label(meta, svc))
                ),
                &mut out,
            ),
            Ev::FaultPartition { link } | Ev::FaultHeal { link } => emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\"name\":\"{} link{link}\"}}",
                    e.ev.name()
                ),
                &mut out,
            ),
            _ => {}
        }
    }

    // Flows: pair FlowStart/FlowEnd into slices on pid 3.
    let mut open_flows: BTreeMap<u64, (SimTime, u64)> = BTreeMap::new();
    let mut flow_tid = 0u64;
    for e in events {
        match e.ev {
            Ev::FlowStart { flow, bytes } => {
                open_flows.insert(flow, (e.at, bytes));
            }
            Ev::FlowEnd { flow } => {
                if let Some((start, bytes)) = open_flows.remove(&flow) {
                    flow_tid += 1;
                    let ts = start.as_micros();
                    emit(
                        format!(
                            "{{\"ph\":\"X\",\"pid\":3,\"tid\":{flow_tid},\"ts\":{ts},\"dur\":{},\"name\":\"flow\",\"cat\":\"flow\",\"args\":{{\"flow\":{flow},\"bytes\":{bytes}}}}}",
                            e.at.as_micros() - ts
                        ),
                        &mut out,
                    );
                }
            }
            _ => {}
        }
    }

    out.push_str("]}");
    out
}

/// Render a metrics snapshot as CSV.
pub fn metrics_csv(rows: &[MetricRow]) -> String {
    let mut out = String::from("metric,kind,total,window,mean,max,p50,p90,p99\n");
    for r in rows {
        let _ = write!(out, "{},{}", r.name, r.kind);
        for v in [r.total, r.window, r.mean, r.max, r.p50, r.p90, r.p99] {
            out.push(',');
            push_f64(&mut out, v);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Outcome;
    use crate::json;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: t(100),
                ev: Ev::SpanBegin {
                    span: 7,
                    parent: None,
                    svc: 0,
                    oneway: false,
                },
            },
            TraceEvent {
                at: t(100),
                ev: Ev::SpanPhase {
                    span: 7,
                    phase: Phase::SynFlow,
                },
            },
            TraceEvent {
                at: t(150),
                ev: Ev::SpanPhase {
                    span: 7,
                    phase: Phase::ServerCpu,
                },
            },
            TraceEvent {
                at: t(130),
                ev: Ev::FlowStart {
                    flow: 3,
                    bytes: 600,
                },
            },
            TraceEvent {
                at: t(170),
                ev: Ev::FlowEnd { flow: 3 },
            },
            TraceEvent {
                at: t(180),
                ev: Ev::ConnQueue { svc: 0, depth: 2 },
            },
            TraceEvent {
                at: t(200),
                ev: Ev::SpanEnd {
                    span: 7,
                    outcome: Outcome::Ok,
                },
            },
        ]
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            key: "set1/MDS users/x=10".into(),
            x: 10.0,
            seed: 42,
            window_start: t(0),
            window_end: t(1000),
            mean_response_time_us: 100.0,
            completions: 1,
            refused: 0,
            services: vec!["gris@mds-host".into()],
            nodes: vec!["mds-host".into()],
        }
    }

    #[test]
    fn spans_assemble_with_phases() {
        let spans = assemble_spans(&sample_events());
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.id, 7);
        assert_eq!(s.begin, t(100));
        assert_eq!(s.end, Some(t(200)));
        assert_eq!(s.outcome, Some("ok"));
        assert_eq!(s.phases.len(), 2);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let doc = chrome_trace(&meta(), &sample_events(), 5);
        let v = json::parse(&doc).expect("valid JSON");
        let g = v.get("gridmon").unwrap();
        assert_eq!(g.get("events_dropped").unwrap().as_f64(), Some(5.0));
        assert_eq!(g.get("completions").unwrap().as_f64(), Some(1.0));
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 process metadata + 1 span + 2 phases + 1 counter + 1 flow.
        assert_eq!(evs.len(), 8);
        let span = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("span"))
            .unwrap();
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(100.0));
        assert_eq!(
            span.get("args").unwrap().get("svc").unwrap().as_str(),
            Some("gris@mds-host")
        );
        // Phase segments partition [begin, end]: 50 + 50 = 100.
        let phase_dur: f64 = evs
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("phase"))
            .map(|e| e.get("dur").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(phase_dur, 100.0);
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let out = jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 7);
        for line in lines {
            let v = json::parse(line).expect("valid JSONL line");
            assert!(v.get("ts").is_some());
            assert!(v.get("ev").is_some());
        }
    }

    #[test]
    fn metrics_csv_has_header_and_rows() {
        let rows = vec![MetricRow {
            name: "mds.ldap_searches".into(),
            kind: "counter",
            total: 12.0,
            window: 7.0,
            mean: 0.0,
            max: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
        }];
        let csv = metrics_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("metric,kind,total,window,mean,max,p50,p90,p99")
        );
        assert_eq!(
            lines.next(),
            Some("mds.ldap_searches,counter,12,7,0,0,0,0,0")
        );
    }
}
