//! The event taxonomy: everything the simulator can report, as small
//! copyable values.
//!
//! Events are *facts about the simulation*, not log lines: each variant
//! carries the ids needed to reconstruct causality offline (span ids with
//! causal parents, service/node/lock indices, packed flow tokens).  The
//! exporters in [`crate::export`] turn them into JSONL and Chrome
//! `trace_event` form without the simulator ever formatting a string on
//! the hot path.

use simcore::SimTime;

/// Identifies one request span across component boundaries.
///
/// Encoded as `(slab index << 32) | generation` by the instrumented
/// world, so it stays below 2^53 and survives a round-trip through JSON
/// numbers.
pub type SpanId = u64;

/// The phase a query span is in.  These are exactly the waiting states a
/// request moves through, so the per-span phase segments partition the
/// span's lifetime — the property `gridmon-inspect --self-check` pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Client-side query-tool CPU (forking `ldapsearch`,
    /// `condor_status`, a JVM call...) before the first connection
    /// attempt.  The paper measures response time from the moment the
    /// user script starts working, so this time is part of the span.
    ClientCpu,
    /// TCP SYN (connection-establishment bytes) in flight.
    SynFlow,
    /// Waiting in the service's listen backlog for a connection slot.
    ConnQueue,
    /// Connection setup round-trips (plus GSI handshakes when enabled).
    Handshake,
    /// Request payload in flight client → server.
    ReqFlow,
    /// Connected, but waiting for a free worker thread.
    WorkerQueue,
    /// Executing on the server's processor-sharing CPU.
    ServerCpu,
    /// Fixed-latency backend step (disk, external call, sleep).
    Backend,
    /// Blocked on a mutual-exclusion lock (e.g. a database row).
    DbLock,
    /// Waiting for sub-requests to other services to complete.
    Children,
    /// Response payload in flight server → client.
    RespFlow,
}

impl Phase {
    /// Every phase, in canonical lifecycle order.
    pub const ALL: [Phase; 11] = [
        Phase::ClientCpu,
        Phase::SynFlow,
        Phase::ConnQueue,
        Phase::Handshake,
        Phase::ReqFlow,
        Phase::WorkerQueue,
        Phase::ServerCpu,
        Phase::Backend,
        Phase::DbLock,
        Phase::Children,
        Phase::RespFlow,
    ];

    /// Stable lowercase name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ClientCpu => "client_cpu",
            Phase::SynFlow => "syn_flow",
            Phase::ConnQueue => "conn_queue",
            Phase::Handshake => "handshake",
            Phase::ReqFlow => "req_flow",
            Phase::WorkerQueue => "worker_queue",
            Phase::ServerCpu => "server_cpu",
            Phase::Backend => "backend",
            Phase::DbLock => "db_lock",
            Phase::Children => "children",
            Phase::RespFlow => "resp_flow",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Response delivered.
    Ok,
    /// Connection refused at admission (backlog full).
    Refused,
    /// Failed mid-plan (explicit failure or missing reply).
    Failed,
}

impl Outcome {
    /// Stable lowercase name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Refused => "refused",
            Outcome::Failed => "failed",
        }
    }
}

/// One typed simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ev {
    /// The event loop dispatched its `seq`-th event.
    Dispatch { seq: u64 },
    /// A request span began (client submitted a request).
    SpanBegin {
        span: SpanId,
        parent: Option<SpanId>,
        svc: u32,
        oneway: bool,
    },
    /// The span entered a new lifecycle phase.
    SpanPhase { span: SpanId, phase: Phase },
    /// The span ended with the given outcome.
    SpanEnd { span: SpanId, outcome: Outcome },
    /// Listen-backlog depth changed for a service.
    ConnQueue { svc: u32, depth: u32 },
    /// A connection was refused (backlog full) at a service.
    ConnDrop { svc: u32 },
    /// Worker-pool queue depth changed for a service.
    WorkerQueue { svc: u32, depth: u32 },
    /// Waiter count changed on a mutual-exclusion lock.
    LockQueue { lock: u32, depth: u32 },
    /// A GSI security handshake ran during connection setup.
    GsiHandshake { svc: u32 },
    /// Service-level cache hit (e.g. cached GRIS search result).
    CacheHit { svc: u32 },
    /// Service-level cache miss.
    CacheMiss { svc: u32 },
    /// A network flow started transferring `bytes`.
    FlowStart { flow: u64, bytes: u64 },
    /// Max-min fair-share recomputation changed a flow's rate (bits/s).
    FlowRate { flow: u64, bps: f64 },
    /// A network flow finished.
    FlowEnd { flow: u64 },
    /// A span's CPU demand was submitted to a node's processor-sharing CPU.
    CpuGrant { node: u32, span: SpanId },
    /// A span's CPU demand completed on a node.
    CpuDone { node: u32, span: SpanId },
    /// The runnable-task count on a node's CPU changed.
    CpuResched { node: u32, runnable: u32 },
    /// Fault injection: a service host crashed (all in-flight requests
    /// targeting it abort, its timers stop, new connections are refused).
    FaultCrash { svc: u32 },
    /// Fault injection: a crashed service host came back up.
    FaultRestart { svc: u32 },
    /// Fault injection: a service froze (GC-pause-style stall) until the
    /// recorded deadline; work resumes afterwards with added latency.
    FaultFreeze { svc: u32 },
    /// Fault injection: a link was degraded to (near) zero capacity.
    FaultPartition { link: u32 },
    /// Fault injection: a degraded link's original capacity was restored.
    FaultHeal { link: u32 },
    /// Fault injection: a service started force-dropping new connections.
    FaultDropBurst { svc: u32 },
}

impl Ev {
    /// Stable lowercase variant name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Ev::Dispatch { .. } => "dispatch",
            Ev::SpanBegin { .. } => "span_begin",
            Ev::SpanPhase { .. } => "span_phase",
            Ev::SpanEnd { .. } => "span_end",
            Ev::ConnQueue { .. } => "conn_queue",
            Ev::ConnDrop { .. } => "conn_drop",
            Ev::WorkerQueue { .. } => "worker_queue",
            Ev::LockQueue { .. } => "lock_queue",
            Ev::GsiHandshake { .. } => "gsi_handshake",
            Ev::CacheHit { .. } => "cache_hit",
            Ev::CacheMiss { .. } => "cache_miss",
            Ev::FlowStart { .. } => "flow_start",
            Ev::FlowRate { .. } => "flow_rate",
            Ev::FlowEnd { .. } => "flow_end",
            Ev::CpuGrant { .. } => "cpu_grant",
            Ev::CpuDone { .. } => "cpu_done",
            Ev::CpuResched { .. } => "cpu_resched",
            Ev::FaultCrash { .. } => "fault_crash",
            Ev::FaultRestart { .. } => "fault_restart",
            Ev::FaultFreeze { .. } => "fault_freeze",
            Ev::FaultPartition { .. } => "fault_partition",
            Ev::FaultHeal { .. } => "fault_heal",
            Ev::FaultDropBurst { .. } => "fault_drop_burst",
        }
    }
}

/// A timestamped event as stored by a tracer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time the event happened.
    pub at: SimTime,
    /// The event itself.
    pub ev: Ev,
}
