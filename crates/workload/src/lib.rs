//! # workload — simulated users
//!
//! The paper simulates users "by running individual user processes
//! (scripts)": each user sends a blocking query, waits for the response,
//! sleeps one second, and repeats.  [`User`] reproduces that closed loop:
//!
//! * start times are staggered uniformly over the first think period so
//!   the users do not move in lockstep;
//! * a refused connection (server accept queue full) is retried with
//!   TCP-like exponential backoff (3 s, 6 s, 12 s … capped, ±20 % jitter),
//!   which is what bounds the load a saturated server actually sees;
//! * the response time recorded for a query spans from the *first*
//!   connection attempt to the final response, and is recorded into the
//!   world's [`simnet::StatsHub`] under a configurable series name
//!   (queries completing outside the measurement window are not counted,
//!   as in the paper's 10-minute spans).

use simcore::{SimDuration, SimRng, SimTime};
use simnet::{Client, ClientCx, NodeId, Payload, ReqOutcome, ReqResult, RequestSpec, SvcKey};

/// Produces the next query for a user: payload plus request size in bytes.
pub type QueryFactory = Box<dyn FnMut(&mut SimRng) -> (Payload, u64)>;

/// Configuration shared by a group of users.
pub struct UserConfig {
    /// Think time between receiving a response and the next query (the
    /// paper's 1-second wait).
    pub think: SimDuration,
    /// Base of the exponential connect-retry backoff.
    pub retry_base: SimDuration,
    /// Cap on the backoff delay.
    pub retry_cap: SimDuration,
    /// Statistic series the user records into.
    pub series: String,
    /// CPU the user script burns on its own machine per query (forking
    /// `ldapsearch`, `condor_status`, a JVM call...).  Contends with the
    /// other users on that machine — at high user counts this is what
    /// capped the measured throughput of the fast servers.
    pub client_cpu_us: f64,
    /// Give up on a query after this long and retry with backoff (the
    /// script's `-timelimit` flag).  `None` (the default) waits forever,
    /// which reproduces the original closed loop exactly.
    pub timeout: Option<SimDuration>,
}

impl Default for UserConfig {
    fn default() -> Self {
        UserConfig {
            think: SimDuration::from_secs(1),
            retry_base: SimDuration::from_secs(3),
            retry_cap: SimDuration::from_secs(48),
            series: "user".to_string(),
            client_cpu_us: 0.0,
            timeout: None,
        }
    }
}

/// One closed-loop user.
pub struct User {
    node: NodeId,
    target: SvcKey,
    think: SimDuration,
    retry_base: SimDuration,
    retry_cap: SimDuration,
    series: String,
    client_cpu_us: f64,
    client_timeout: Option<SimDuration>,
    make_query: QueryFactory,
    rng: SimRng,
    /// Time the current query's first attempt was submitted.
    query_started: SimTime,
    attempt: u32,
    /// Generation of the attempt currently awaited (`None` while thinking
    /// or backing off).  Stale outcomes — a response arriving after its
    /// attempt timed out — carry an older generation and are discarded.
    awaiting: Option<u64>,
    /// Attempt generation counter; doubles as the submit tag.
    gen: u64,
    /// Completed queries (whole run, not just the window).
    pub completed: u64,
    /// Refusals encountered (whole run).
    pub refused: u64,
    /// Failures encountered (whole run).
    pub failed: u64,
    /// Attempts abandoned at the client timeout (whole run).
    pub timedout: u64,
}

impl User {
    pub fn new(
        node: NodeId,
        target: SvcKey,
        config: &UserConfig,
        make_query: QueryFactory,
        rng: SimRng,
    ) -> User {
        User {
            node,
            target,
            think: config.think,
            retry_base: config.retry_base,
            retry_cap: config.retry_cap,
            series: config.series.clone(),
            client_cpu_us: config.client_cpu_us,
            client_timeout: config.timeout,
            make_query,
            rng,
            query_started: SimTime::ZERO,
            attempt: 0,
            awaiting: None,
            gen: 0,
            completed: 0,
            refused: 0,
            failed: 0,
            timedout: 0,
        }
    }

    fn send(&mut self, cx: &mut ClientCx, _fresh: bool) {
        let (payload, bytes) = (self.make_query)(&mut self.rng);
        let spec = RequestSpec {
            from: self.node,
            to: self.target,
            payload,
            req_bytes: bytes,
        };
        self.gen += 1;
        self.awaiting = Some(self.gen);
        if self.attempt == 0 {
            // First attempt: the span covers the client-side CPU burned
            // since `query_started`, matching the recorded response
            // time.  Retries are separate spans (the recorded time
            // additionally includes backoff, which no span covers).
            cx.submit_started(spec, self.gen, self.query_started);
        } else {
            cx.submit(spec, self.gen);
        }
        if let Some(limit) = self.client_timeout {
            cx.wake_in(limit, TAG_TIMEOUT | self.gen);
        }
    }

    fn backoff(&mut self) -> SimDuration {
        let exp = self.attempt.min(8);
        let base = self.retry_base * (1u64 << exp.min(4));
        let capped = base.min(self.retry_cap);
        // ±20% jitter.
        capped.mul_f64(self.rng.uniform(0.8, 1.2))
    }
}

/// Wake tags.  Timeout wakes carry the attempt generation in the low 32
/// bits so a late-firing timeout for an attempt that already completed is
/// recognisable as stale.
const TAG_NEXT_QUERY: u64 = 1;
const TAG_RETRY: u64 = 2;
const TAG_CPU_DONE: u64 = 3;
const TAG_TIMEOUT: u64 = 1 << 32;

impl Client for User {
    fn on_start(&mut self, cx: &mut ClientCx) {
        // Stagger start uniformly over one think period.
        let jitter = self.think.mul_f64(self.rng.next_f64());
        cx.wake_in(jitter, TAG_NEXT_QUERY);
    }

    fn on_wake(&mut self, tag: u64, cx: &mut ClientCx) {
        match tag {
            TAG_NEXT_QUERY => {
                // New query: the script first burns its client-side CPU
                // (measured as part of the response time), then sends.
                self.query_started = cx.now();
                self.attempt = 0;
                if self.client_cpu_us > 0.0 {
                    cx.spend_cpu(self.node, self.client_cpu_us, TAG_CPU_DONE);
                } else {
                    self.send(cx, false);
                }
            }
            TAG_CPU_DONE | TAG_RETRY => self.send(cx, false),
            t if t & TAG_TIMEOUT != 0 => {
                let gen = t & !TAG_TIMEOUT;
                if self.awaiting != Some(gen) {
                    return; // the attempt already resolved; stale timer
                }
                // Give up on this attempt.  Its eventual outcome (if any)
                // will arrive with a stale generation and be discarded.
                self.awaiting = None;
                self.timedout += 1;
                self.attempt += 1;
                let now = cx.now();
                let rt = (now - self.query_started).as_secs_f64();
                let series = format!("{}.timedout", self.series);
                cx.net.stats.incr_windowed(&series, now);
                // Recorded under its own series: abandoned attempts must
                // not drag the completed-query response-time mean.
                cx.net.stats.record_completion(&series, now, rt);
                let delay = self.backoff();
                cx.wake_in(delay, TAG_RETRY);
            }
            _ => {}
        }
    }

    fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
        if self.awaiting != Some(outcome.tag) {
            // Response (or refusal) for an attempt we already abandoned at
            // the timeout: count it, but the loop has moved on.
            let now = cx.now();
            cx.net
                .stats
                .incr_windowed(&format!("{}.late", self.series), now);
            return;
        }
        self.awaiting = None;
        match outcome.result {
            ReqResult::Ok(..) => {
                self.completed += 1;
                let rt = (outcome.completed - self.query_started).as_secs_f64();
                let now = cx.now();
                cx.net.stats.record_completion(&self.series, now, rt);
                cx.wake_in(self.think, TAG_NEXT_QUERY);
            }
            ReqResult::Refused => {
                self.refused += 1;
                self.attempt += 1;
                let now = cx.now();
                cx.net
                    .stats
                    .incr_windowed(&format!("{}.refused", self.series), now);
                let delay = self.backoff();
                cx.wake_in(delay, TAG_RETRY);
            }
            ReqResult::Failed => {
                self.failed += 1;
                let now = cx.now();
                let rt = (outcome.completed - self.query_started).as_secs_f64();
                let series = format!("{}.failed", self.series);
                cx.net.stats.incr_windowed(&series, now);
                // Failed queries get their own latency series; folding them
                // into the main mean under-reported response times whenever
                // a server died mid-burst (failures resolve fast).
                cx.net.stats.record_completion(&series, now, rt);
                // Treat like the script dying and restarting the loop.
                cx.wake_in(self.think, TAG_NEXT_QUERY);
            }
        }
    }
}

/// Spawn `placement.len()` users (one per entry, on that node), all
/// targeting `target`, each with an independent RNG stream and a query
/// from `factory`.
pub fn spawn_users(
    net: &mut simnet::Net,
    eng: &mut simnet::Eng,
    placement: &[NodeId],
    target: SvcKey,
    config: &UserConfig,
    mut factory: impl FnMut() -> QueryFactory,
) -> Vec<simnet::ClientKey> {
    placement
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let rng = eng.rng.fork(0x5EED + i as u64);
            net.add_client(Box::new(User::new(node, target, config, factory(), rng)))
        })
        .collect()
}

/// An open-loop load generator: queries arrive as a Poisson process at
/// `rate_per_sec`, regardless of whether earlier queries have finished —
/// the paper's future-work item "additional patterns of user access".
/// Unlike the closed-loop [`User`], an open-loop source does not slow
/// down when the server does, so overload is unbounded rather than
/// self-limiting.
pub struct OpenLoopSource {
    node: NodeId,
    target: SvcKey,
    rate_per_sec: f64,
    series: String,
    make_query: QueryFactory,
    rng: SimRng,
    /// Submission time per outstanding tag.
    outstanding: std::collections::HashMap<u64, SimTime>,
    next_tag: u64,
    /// Completed/failed counts (whole run).
    pub completed: u64,
    pub failed: u64,
}

impl OpenLoopSource {
    pub fn new(
        node: NodeId,
        target: SvcKey,
        rate_per_sec: f64,
        series: &str,
        make_query: QueryFactory,
        rng: SimRng,
    ) -> Self {
        assert!(rate_per_sec > 0.0);
        OpenLoopSource {
            node,
            target,
            rate_per_sec,
            series: series.to_string(),
            make_query,
            rng,
            outstanding: std::collections::HashMap::new(),
            next_tag: 0,
            completed: 0,
            failed: 0,
        }
    }

    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    fn arm_next_arrival(&mut self, cx: &mut ClientCx) {
        let gap = self.rng.exponential(1.0 / self.rate_per_sec);
        cx.wake_in(SimDuration::from_secs_f64(gap), 0);
    }
}

impl Client for OpenLoopSource {
    fn on_start(&mut self, cx: &mut ClientCx) {
        self.arm_next_arrival(cx);
    }

    fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
        let (payload, bytes) = (self.make_query)(&mut self.rng);
        let tag = self.next_tag;
        self.next_tag += 1;
        self.outstanding.insert(tag, cx.now());
        cx.submit(
            RequestSpec {
                from: self.node,
                to: self.target,
                payload,
                req_bytes: bytes,
            },
            tag,
        );
        self.arm_next_arrival(cx);
    }

    fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
        let Some(started) = self.outstanding.remove(&outcome.tag) else {
            return;
        };
        match outcome.result {
            ReqResult::Ok(..) => {
                self.completed += 1;
                let rt = (outcome.completed - started).as_secs_f64();
                let now = cx.now();
                cx.net.stats.record_completion(&self.series, now, rt);
            }
            _ => {
                // Open-loop sources don't retry: a refused/failed arrival
                // is a loss.
                self.failed += 1;
                let now = cx.now();
                cx.net
                    .stats
                    .incr_windowed(&format!("{}.lost", self.series), now);
            }
        }
    }
}

/// Like [`spawn_users`] but with a per-user `(node, target)` placement —
/// used when each client host talks to its own local servlet (the paper's
/// "ConsumerServlet on each Lucky node" configuration).
pub fn spawn_users_to(
    net: &mut simnet::Net,
    eng: &mut simnet::Eng,
    placement: &[(NodeId, SvcKey)],
    config: &UserConfig,
    mut factory: impl FnMut() -> QueryFactory,
) -> Vec<simnet::ClientKey> {
    placement
        .iter()
        .enumerate()
        .map(|(i, &(node, target))| {
            let rng = eng.rng.fork(0x5EED + i as u64);
            net.add_client(Box::new(User::new(node, target, config, factory(), rng)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Engine;
    use simnet::{Eng, Net, Plan, Service, ServiceConfig, StatsHub, SvcCx, Topology};

    struct Fast {
        cpu_us: f64,
    }

    impl Service for Fast {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new().cpu(self.cpu_us).reply((), 512)
        }
    }

    fn world(conn_capacity: u32, backlog: u32) -> (Net, Eng, Vec<NodeId>, SvcKey) {
        world_with_cost(conn_capacity, backlog, 1_000.0)
    }

    fn world_with_cost(
        conn_capacity: u32,
        backlog: u32,
        cpu_us: f64,
    ) -> (Net, Eng, Vec<NodeId>, SvcKey) {
        let mut topo = Topology::new();
        let server = topo.add_node("server", 2, 1.0);
        let mut clients = Vec::new();
        for i in 0..4 {
            let c = topo.add_node(format!("c{i}"), 1, 1.0);
            topo.connect(c, server, 100e6, SimDuration::from_millis(1));
            clients.push(c);
        }
        let stats = StatsHub::new(SimTime::from_secs(30), SimTime::from_secs(130));
        let mut net = Net::new(topo, stats);
        let mut eng: Eng = Engine::new(11);
        let cfg = ServiceConfig {
            conn_capacity,
            backlog,
            workers: Some(16),
            ..Default::default()
        };
        let svc = net.add_service(server, cfg, Box::new(Fast { cpu_us }), &mut eng);
        (net, eng, clients, svc)
    }

    fn factory() -> QueryFactory {
        Box::new(|_rng| (Box::new(()) as Payload, 256))
    }

    #[test]
    fn closed_loop_throughput_follows_littles_law() {
        let (mut net, mut eng, clients, svc) = world(1024, 128);
        let placement: Vec<NodeId> = (0..20).map(|i| clients[i % 4]).collect();
        let cfg = UserConfig::default();
        spawn_users(&mut net, &mut eng, &placement, svc, &cfg, factory);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(130));
        // 20 users, ~5ms RT, 1s think: X ≈ 20/(1.005) ≈ 19.9 q/s.
        let x = net.stats.throughput("user");
        assert!(x > 17.0 && x < 21.0, "throughput {x}");
        let rt = net.stats.mean_response_time("user");
        assert!(rt < 0.1, "rt {rt}");
        assert_eq!(net.stats.counter("user.refused"), 0);
    }

    #[test]
    fn overload_triggers_refusals_and_backoff() {
        // Tiny accept pool + slow service (200 ms CPU on 2 cores): the
        // offered concurrency of 40 users far exceeds the 4 slots.
        let (mut net, mut eng, clients, svc) = world_with_cost(2, 2, 200_000.0);
        let placement: Vec<NodeId> = (0..40).map(|i| clients[i % 4]).collect();
        let cfg = UserConfig::default();
        let keys = spawn_users(&mut net, &mut eng, &placement, svc, &cfg, factory);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(130));
        let refused: u64 = keys
            .iter()
            .map(|&k| {
                net.client_as::<User>(k)
                    .expect("spawn_users keys resolve to User clients")
                    .refused
            })
            .sum();
        assert!(refused > 10, "refusals {refused}");
        // Completed-query response times stay bounded: a few backoff
        // rounds at most, never the minutes an unbounded queue would give
        // (40 users × 0.2 s of work on 4 slots).
        let rt = net.stats.mean_response_time("user");
        assert!(rt < 10.0, "rt {rt}");
        // Throughput is far below the closed-loop ideal of ~40/s.
        let x = net.stats.throughput("user");
        assert!(x < 25.0, "throughput {x}");
        assert!(x > 0.5, "throughput {x}");
    }

    #[test]
    fn users_stagger_their_starts() {
        let (mut net, mut eng, clients, svc) = world(1024, 128);
        let placement: Vec<NodeId> = (0..10).map(|i| clients[i % 4]).collect();
        let cfg = UserConfig::default();
        spawn_users(&mut net, &mut eng, &placement, svc, &cfg, factory);
        net.start(&mut eng);
        // After 1 think-period everyone has started exactly one query...
        eng.run_until(&mut net, SimTime::from_secs(3));
        let handled = net.service_stats(svc).requests_handled;
        assert!(handled >= 10, "handled {handled}");
    }

    #[test]
    fn open_loop_source_offers_poisson_load() {
        let (mut net, mut eng, clients, svc) = world(1024, 128);
        // 8 q/s offered at a fast server: everything completes.
        let rng = eng.rng.fork(1);
        net.add_client(Box::new(OpenLoopSource::new(
            clients[0],
            svc,
            8.0,
            "user",
            Box::new(|_| (Box::new(()) as Payload, 256)),
            rng,
        )));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(130));
        let x = net.stats.throughput("user");
        assert!(x > 6.0 && x < 10.0, "throughput {x}");
        assert_eq!(net.stats.counter("user.lost"), 0);
    }

    #[test]
    fn open_loop_overload_drops_instead_of_queueing() {
        // 1-slot server with 0 backlog and 300ms service: capacity ~3 q/s.
        let (mut net, mut eng, clients, svc) = world_with_cost(1, 0, 300_000.0);
        let rng = eng.rng.fork(2);
        net.add_client(Box::new(OpenLoopSource::new(
            clients[0],
            svc,
            20.0,
            "user",
            Box::new(|_| (Box::new(()) as Payload, 256)),
            rng,
        )));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(130));
        let x = net.stats.throughput("user");
        let lost = net.stats.counter("user.lost");
        assert!(x < 5.0, "completed {x}");
        assert!(lost > 500, "lost {lost}");
    }

    /// Fails every other query after a long compute, answers the rest
    /// quickly — the failure latency is far above the success latency.
    struct Flaky {
        n: u64,
    }

    impl Service for Flaky {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            self.n += 1;
            if self.n.is_multiple_of(2) {
                Plan::new().cpu(400_000.0).fail()
            } else {
                Plan::new().cpu(1_000.0).reply((), 512)
            }
        }
    }

    #[test]
    fn failed_queries_do_not_pollute_response_time_mean() {
        let mut topo = Topology::new();
        let server = topo.add_node("server", 2, 1.0);
        let c = topo.add_node("c0", 1, 1.0);
        topo.connect(c, server, 100e6, SimDuration::from_millis(1));
        let stats = StatsHub::new(SimTime::from_secs(10), SimTime::from_secs(110));
        let mut net = Net::new(topo, stats);
        let mut eng: Eng = Engine::new(11);
        let svc = net.add_service(
            server,
            ServiceConfig::default(),
            Box::new(Flaky { n: 0 }),
            &mut eng,
        );
        let cfg = UserConfig::default();
        spawn_users(&mut net, &mut eng, &[c], svc, &cfg, factory);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(110));
        // Successes are milliseconds; the 0.4 s failures must live in
        // their own series, not the completed-query mean.
        let rt_ok = net.stats.mean_response_time("user");
        assert!(rt_ok < 0.1, "ok mean {rt_ok}");
        assert!(net.stats.counter("user.failed") > 10);
        assert!(net.stats.completions("user.failed") > 10);
        let rt_fail = net.stats.mean_response_time("user.failed");
        assert!(rt_fail > 0.3, "failed mean {rt_fail}");
    }

    #[test]
    fn timeout_abandons_slow_queries_and_discards_late_responses() {
        // 5 s of server CPU per query against a 1 s client timeout: every
        // attempt is abandoned, retried with backoff, and the eventual
        // response arrives late and is discarded.
        let (mut net, mut eng, clients, svc) = world_with_cost(1024, 128, 5_000_000.0);
        let cfg = UserConfig {
            timeout: Some(SimDuration::from_secs(1)),
            ..Default::default()
        };
        let keys = spawn_users(&mut net, &mut eng, &clients[..1], svc, &cfg, factory);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(130));
        let user = net
            .client_as::<User>(keys[0])
            .expect("spawn_users keys resolve to User clients");
        assert!(user.timedout > 3, "timedout {}", user.timedout);
        assert_eq!(user.completed, 0);
        // The windowed counter sees fewer: backoff stretches attempts out
        // and the stats window opens at t=30 s.
        assert!(net.stats.counter("user.timedout") >= 1);
        // Late responses were seen and ignored, not recorded as successes.
        assert!(net.stats.counter("user.late") > 0);
        assert_eq!(net.stats.completions("user"), 0);
        // Abandoned-attempt waits are tracked in their own series.
        let rt = net.stats.mean_response_time("user.timedout");
        assert!(rt > 0.9, "timedout mean {rt}");
    }

    #[test]
    fn no_timeout_config_never_times_out() {
        let (mut net, mut eng, clients, svc) = world_with_cost(1024, 128, 3_000_000.0);
        let cfg = UserConfig::default(); // timeout: None
        let keys = spawn_users(&mut net, &mut eng, &clients[..1], svc, &cfg, factory);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(130));
        let user = net
            .client_as::<User>(keys[0])
            .expect("spawn_users keys resolve to User clients");
        assert_eq!(user.timedout, 0);
        assert!(user.completed > 10);
        assert_eq!(net.stats.counter("user.late"), 0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = || {
            let (mut net, mut eng, clients, svc) = world(8, 4);
            let placement: Vec<NodeId> = (0..30).map(|i| clients[i % 4]).collect();
            let cfg = UserConfig::default();
            spawn_users(&mut net, &mut eng, &placement, svc, &cfg, factory);
            net.start(&mut eng);
            eng.run_until(&mut net, SimTime::from_secs(130));
            (
                net.stats.completions("user"),
                net.stats.counter("user.refused"),
                format!("{:.9}", net.stats.mean_response_time("user")),
            )
        };
        assert_eq!(run(), run());
    }
}
