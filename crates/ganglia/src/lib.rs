//! # ganglia — testbed monitoring
//!
//! The paper used Ganglia to collect performance data at five-second
//! intervals and reported two host metrics for every experiment:
//!
//! * **CPU load** — the percentage of CPU cycles spent in user+system
//!   mode (the sum of Ganglia's `cpu_user` and `cpu_system`);
//! * **load1** — Ganglia's `load_one`, the one-minute exponentially
//!   decayed average of the number of runnable processes.
//!
//! [`Monitor`] is a simulated client that samples the watched hosts every
//! five seconds during the run and aggregates each metric over the
//! measurement window, exactly as the paper does ("the values reported are
//! the average over all the values recorded during a 10-minute time
//! span").

use simcore::stats::{LoadAvg, Series};
use simcore::{SimDuration, SimTime};
use simnet::{Client, ClientCx, NodeId};

/// Ganglia's default metric collection period.
pub const SAMPLE_PERIOD: SimDuration = SimDuration(5_000_000);

/// Per-host sampled state.
struct HostState {
    node: NodeId,
    load1: LoadAvg,
    prev_busy: f64,
    prev_t: SimTime,
    load1_series: Series,
    cpu_series: Series,
}

/// The monitoring client: wakes every 5 s and samples all watched hosts.
pub struct Monitor {
    hosts: Vec<HostState>,
    started: bool,
}

impl Monitor {
    /// Watch the given nodes.
    pub fn new(nodes: &[NodeId]) -> Monitor {
        Monitor {
            hosts: nodes
                .iter()
                .map(|&node| HostState {
                    node,
                    load1: LoadAvg::one_minute(),
                    prev_busy: 0.0,
                    prev_t: SimTime::ZERO,
                    load1_series: Series::new(),
                    cpu_series: Series::new(),
                })
                .collect(),
            started: false,
        }
    }

    fn sample(&mut self, cx: &mut ClientCx) {
        let now = cx.now();
        for h in &mut self.hosts {
            let runnable = cx.net.node_runnable(h.node) as f64;
            h.load1.update(now, runnable);
            h.load1_series.push(now, h.load1.value());

            let busy = cx.net.node_busy_core_seconds(h.node, now);
            let dt = now.saturating_since(h.prev_t).as_secs_f64();
            let cores = cx.net.node_cores(h.node) as f64;
            let cpu_pct = if dt > 0.0 {
                ((busy - h.prev_busy) / dt / cores * 100.0).clamp(0.0, 100.0)
            } else {
                0.0
            };
            h.cpu_series.push(now, cpu_pct);
            h.prev_busy = busy;
            h.prev_t = now;
            if cx.net.obs.metrics_on() {
                let name = cx.net.topo.node(h.node).name.clone();
                cx.net
                    .obs
                    .gauge(&format!("ganglia.load1.{name}"), now, h.load1.value());
                cx.net
                    .obs
                    .gauge(&format!("ganglia.cpu_pct.{name}"), now, cpu_pct);
            }
        }
    }

    fn host(&self, node: NodeId) -> Option<&HostState> {
        self.hosts.iter().find(|h| h.node == node)
    }

    /// Mean load1 of `node` over `[start, end)`.
    pub fn load1_mean(&self, node: NodeId, start: SimTime, end: SimTime) -> f64 {
        self.host(node)
            .map_or(0.0, |h| h.load1_series.mean_in(start, end))
    }

    /// Peak load1 of `node` over the window.
    pub fn load1_max(&self, node: NodeId, start: SimTime, end: SimTime) -> f64 {
        self.host(node)
            .map_or(0.0, |h| h.load1_series.max_in(start, end))
    }

    /// Mean CPU load (%) of `node` over the window.
    pub fn cpu_mean(&self, node: NodeId, start: SimTime, end: SimTime) -> f64 {
        self.host(node)
            .map_or(0.0, |h| h.cpu_series.mean_in(start, end))
    }

    /// The raw load1 time series (for plots).
    pub fn load1_series(&self, node: NodeId) -> Option<&Series> {
        self.host(node).map(|h| &h.load1_series)
    }

    /// The raw CPU-percent time series.
    pub fn cpu_series(&self, node: NodeId) -> Option<&Series> {
        self.host(node).map(|h| &h.cpu_series)
    }
}

impl Client for Monitor {
    fn on_start(&mut self, cx: &mut ClientCx) {
        debug_assert!(!self.started);
        self.started = true;
        self.sample(cx);
        cx.wake_in(SAMPLE_PERIOD, 0);
    }

    fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
        self.sample(cx);
        cx.wake_in(SAMPLE_PERIOD, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Engine;
    use simnet::{
        Eng, Net, Payload, Plan, ReqOutcome, RequestSpec, Service, ServiceConfig, StatsHub, SvcCx,
        SvcKey, Topology,
    };

    /// Service burning a lot of CPU per request.
    struct Burner;

    impl Service for Burner {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new().cpu(2_000_000.0).reply((), 64) // 2 CPU-seconds
        }
    }

    /// Client hammering the burner with `n` parallel request streams.
    struct Hammer {
        from: NodeId,
        to: SvcKey,
        streams: u32,
    }

    impl Client for Hammer {
        fn on_start(&mut self, cx: &mut ClientCx) {
            for i in 0..self.streams {
                cx.submit(
                    RequestSpec {
                        from: self.from,
                        to: self.to,
                        payload: Box::new(()),
                        req_bytes: 100,
                    },
                    i as u64,
                );
            }
        }
        fn on_outcome(&mut self, o: ReqOutcome, cx: &mut ClientCx) {
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(()),
                    req_bytes: 100,
                },
                o.tag,
            );
        }
    }

    #[test]
    fn monitor_sees_busy_server() {
        let mut topo = Topology::new();
        let client = topo.add_node("client", 1, 1.0);
        let server = topo.add_node("server", 2, 1.0);
        topo.connect(client, server, 100e6, SimDuration::from_micros(100));
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(600)));
        let mut eng: Eng = Engine::new(3);
        let svc = net.add_service(server, ServiceConfig::default(), Box::new(Burner), &mut eng);
        net.add_client(Box::new(Hammer {
            from: client,
            to: svc,
            streams: 6,
        }));
        let mon = net.add_client(Box::new(Monitor::new(&[server, client])));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(300));
        let monitor: &Monitor = net.client_as(mon).unwrap();
        let (s, e) = (SimTime::from_secs(60), SimTime::from_secs(300));
        // 6 concurrent 2s-CPU jobs on 2 cores: saturated.
        let cpu = monitor.cpu_mean(server, s, e);
        assert!(cpu > 90.0, "server cpu {cpu}");
        let load1 = monitor.load1_mean(server, s, e);
        assert!(load1 > 4.0, "server load1 {load1}");
        // The client node does nothing CPU-bound.
        let client_cpu = monitor.cpu_mean(client, s, e);
        assert!(client_cpu < 5.0, "client cpu {client_cpu}");
        // Series lengths: one sample per 5s.
        let series = monitor.load1_series(server).unwrap();
        assert!(series.len() >= 59, "samples {}", series.len());
    }

    #[test]
    fn idle_host_has_zero_metrics() {
        let mut topo = Topology::new();
        let a = topo.add_node("idle", 2, 1.0);
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(100)));
        let mut eng: Eng = Engine::new(4);
        let mon = net.add_client(Box::new(Monitor::new(&[a])));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(100));
        let monitor: &Monitor = net.client_as(mon).unwrap();
        assert_eq!(
            monitor.cpu_mean(a, SimTime::ZERO, SimTime::from_secs(100)),
            0.0
        );
        assert_eq!(
            monitor.load1_max(a, SimTime::ZERO, SimTime::from_secs(100)),
            0.0
        );
    }

    #[test]
    fn unknown_node_returns_zero() {
        let mon = Monitor::new(&[]);
        assert_eq!(mon.load1_mean(NodeId(99), SimTime::ZERO, SimTime::MAX), 0.0);
        assert!(mon.load1_series(NodeId(99)).is_none());
    }
}
