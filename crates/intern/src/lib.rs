//! String interning for the simulation hot paths.
//!
//! The monitored-system models churn through a small, stable
//! vocabulary — LDAP attribute types and DN components, ClassAd
//! identifiers, SQL table and column names — yet the original
//! representations carried each occurrence as an owned `String`:
//! every `Dn::clone` paid one allocation per component, every
//! projection re-allocated attribute names it had already seen a
//! million times.  [`Sym`] replaces those strings with a `u32` handle
//! into a per-thread table:
//!
//! * [`intern`] returns the symbol for a string, allocating (once,
//!   leaked) only the first time the thread sees it;
//! * `Sym` is `Copy`, so cloning any structure built from symbols
//!   stops allocating;
//! * equality and hashing compare the `u32` id — within a thread the
//!   table is deduplicated, so id equality *is* string equality;
//! * **ordering compares the resolved strings**, so a
//!   `BTreeMap<Sym, _>` iterates in exactly the order the
//!   `BTreeMap<String, _>` it replaced did.  Bit-identical iteration
//!   order is a correctness requirement here: result caps and merge
//!   orders downstream (e.g. the GIIS payload cap) are sensitive to
//!   it, and the figure CSVs are pinned byte-for-byte.
//!
//! # Scope: one table per thread
//!
//! The table is thread-local, which in this workspace means
//! per-harness: a simulation world is built and run on a single
//! worker thread, and nothing interned ever crosses threads (worker
//! results are plain measurements).  A `Sym` moved to another thread
//! would resolve against that thread's unrelated table — don't ship
//! symbols across threads, and don't cache them in process-global
//! state.
//!
//! The table leaks its strings by design: the vocabulary is bounded
//! by the deployment (attribute schema, host names, column names), a
//! worker thread runs many points, and `&'static str` resolution is
//! what lets [`Sym::as_str`] hand out borrows without lifetimes or
//! locks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

thread_local! {
    static TABLE: RefCell<Interner> = RefCell::new(Interner::new());
}

struct Interner {
    /// String -> id.  Keys borrow from the leaked strings in `strings`.
    ids: HashMap<&'static str, u32>,
    /// id -> string.
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Interner {
        Interner {
            ids: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.strings.len()).expect("interner table overflow");
        self.strings.push(leaked);
        self.ids.insert(leaked, id);
        id
    }
}

/// An interned string: a `Copy` handle valid on the thread that
/// interned it.  See the module docs for the ordering/equality
/// contract.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

/// Intern `s` on this thread's table, allocating only on first sight.
pub fn intern(s: &str) -> Sym {
    Sym(TABLE.with(|t| t.borrow_mut().intern(s)))
}

/// The symbol for `s` if this thread has already interned it, without
/// inserting.  Useful for lookups: if a key was never interned it
/// cannot be present in any symbol-keyed container on this thread.
pub fn lookup(s: &str) -> Option<Sym> {
    TABLE.with(|t| t.borrow().ids.get(s).copied().map(Sym))
}

/// Number of distinct strings this thread has interned (diagnostics).
pub fn table_len() -> usize {
    TABLE.with(|t| t.borrow().strings.len())
}

impl Sym {
    /// Resolve to the interned string.  `&'static` because the table
    /// leaks: the borrow outlives every symbol user on this thread.
    pub fn as_str(self) -> &'static str {
        TABLE.with(|t| {
            t.borrow()
                .strings
                .get(self.0 as usize)
                .copied()
                .expect("Sym resolved on a thread that did not intern it")
        })
    }

    /// The raw table index (diagnostics / diff tests).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl std::ops::Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::borrow::Borrow<str> for Sym {
    // Only sound for *ordered* containers: `Ord` matches `str`'s, but
    // `Hash` is by id, so a `HashMap<Sym, _>` must be probed with
    // `Sym` keys, never through this impl.
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?}#{})", self.as_str(), self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn interning_deduplicates() {
        let a = intern("objectclass");
        let b = intern("objectclass");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "objectclass");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = intern("mds-host-hn");
        let b = intern("mds-vo-name");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn lookup_does_not_insert() {
        let before = table_len();
        assert_eq!(lookup("gintern-test-never-interned-key"), None);
        assert_eq!(table_len(), before);
        let s = intern("gintern-test-now-interned");
        assert_eq!(lookup("gintern-test-now-interned"), Some(s));
    }

    #[test]
    fn ordering_matches_string_ordering() {
        // Intern in an order unrelated to lexicographic order: the id
        // order must not leak into comparisons.
        let words = ["zeta", "alpha", "mu", "beta", "omega"];
        let syms: Vec<Sym> = words.iter().map(|w| intern(w)).collect();
        let mut by_sym = syms.clone();
        by_sym.sort();
        let mut by_str = words;
        by_str.sort();
        assert_eq!(
            by_sym.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            by_str.to_vec()
        );
    }

    #[test]
    fn btreemap_iterates_in_string_order() {
        let mut m: BTreeMap<Sym, u32> = BTreeMap::new();
        for (i, w) in ["x", "c", "aa", "b"].iter().enumerate() {
            m.insert(intern(w), i as u32);
        }
        let keys: Vec<&str> = m.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, ["aa", "b", "c", "x"]);
        // Ordered lookup through Borrow<str>.
        assert_eq!(m.get("aa"), m.get(&intern("aa")));
    }

    #[test]
    fn deref_and_display() {
        let s = intern("mds-cpu-total-count");
        assert_eq!(s.len(), "mds-cpu-total-count".len());
        assert!(s.starts_with("mds-"));
        assert_eq!(format!("{s}"), "mds-cpu-total-count");
        assert_eq!(s, "mds-cpu-total-count");
    }

    #[test]
    fn reinterning_does_not_grow_the_table() {
        intern("gintern-test-growth-probe");
        let before = table_len();
        for _ in 0..100 {
            let _ = intern("gintern-test-growth-probe");
        }
        assert_eq!(table_len(), before);
    }
}
