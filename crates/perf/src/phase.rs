//! Scoped wall-clock phase timers.
//!
//! A [`Phases`] collects named `(phase, wall time)` entries for the
//! coarse stages of a run — enumerate, cache probe, execute, report —
//! either through the drop-guard [`PhaseScope`] or the closure helper
//! [`Phases::time`].  Repeated phases accumulate under one name, so a
//! loop over experiment sets folds naturally into a handful of rows.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// A named set of accumulated wall-clock phases, in first-seen order.
#[derive(Debug, Default)]
pub struct Phases {
    entries: RefCell<Vec<(String, Duration)>>,
}

impl Phases {
    pub fn new() -> Phases {
        Phases::default()
    }

    /// Start a scoped timer; the elapsed wall time is recorded under
    /// `name` when the returned guard drops.
    pub fn scope(&self, name: impl Into<String>) -> PhaseScope<'_> {
        PhaseScope {
            phases: self,
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// Time `f` under `name` and pass its result through.
    pub fn time<R>(&self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let _scope = self.scope(name);
        f()
    }

    /// Record `wall` under `name` directly (accumulating).
    pub fn add(&self, name: &str, wall: Duration) {
        let mut entries = self.entries.borrow_mut();
        match entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, d)) => *d += wall,
            None => entries.push((name.to_string(), wall)),
        }
    }

    /// The recorded `(name, total wall)` rows, in first-seen order.
    pub fn entries(&self) -> Vec<(String, Duration)> {
        self.entries.borrow().clone()
    }

    /// Total wall time across all phases.
    pub fn total(&self) -> Duration {
        self.entries.borrow().iter().map(|(_, d)| *d).sum()
    }
}

/// Drop guard recording elapsed wall time into its [`Phases`].
#[must_use = "the phase is timed until this guard drops"]
pub struct PhaseScope<'a> {
    phases: &'a Phases,
    name: String,
    started: Instant,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.phases.add(&self.name, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_record_and_accumulate() {
        let p = Phases::new();
        {
            let _a = p.scope("execute");
        }
        p.add("execute", Duration::from_millis(5));
        p.add("report", Duration::from_millis(2));
        let rows = p.entries();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "execute");
        assert!(rows[0].1 >= Duration::from_millis(5), "accumulated");
        assert_eq!(rows[1].0, "report");
        assert!(p.total() >= Duration::from_millis(7));
    }

    #[test]
    fn time_passes_the_result_through() {
        let p = Phases::new();
        let v = p.time("compute", || 6 * 7);
        assert_eq!(v, 42);
        assert_eq!(p.entries().len(), 1);
    }
}
