//! Optional counting global allocator.
//!
//! With the `count-alloc` feature, `gperf` installs [`CountingAlloc`]
//! (a thin shim over the system allocator) as the process' global
//! allocator and keeps four relaxed atomics: allocation count, total
//! bytes ever allocated, current in-use bytes and the peak of that
//! high-water mark.  [`stats`] then reports `Some(AllocStats)`;
//! without the feature it reports `None` and the default allocator is
//! untouched — the counting path is compiled out entirely.
//!
//! The shim adds two or three relaxed atomic ops per allocation —
//! measurable on allocation-heavy code, which is exactly why it is a
//! feature and not a default.  Enable it via
//! `cargo run -p gridmon-bench --features alloc-profile ...`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);
static IN_USE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations since process start (reallocs count as one).
    pub allocs: u64,
    /// Cumulative bytes ever handed out.
    pub bytes_total: u64,
    /// Bytes currently in use.
    pub in_use: u64,
    /// High-water mark of `in_use`.
    pub peak: u64,
}

/// Allocator counters, or `None` when the `count-alloc` feature (and
/// with it the counting allocator) is not compiled in.
pub fn stats() -> Option<AllocStats> {
    if !cfg!(feature = "count-alloc") {
        return None;
    }
    Some(AllocStats {
        allocs: ALLOCS.load(Relaxed),
        bytes_total: BYTES_TOTAL.load(Relaxed),
        in_use: IN_USE.load(Relaxed),
        peak: PEAK.load(Relaxed),
    })
}

/// The counting shim over [`std::alloc::System`].
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES_TOTAL.fetch_add(size as u64, Relaxed);
        let now = IN_USE.fetch_add(size as u64, Relaxed) + size as u64;
        PEAK.fetch_max(now, Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        // Saturating: allocations made before the counters existed
        // (there are none when installed as the global allocator, but
        // stay defensive) must not wrap the gauge.
        let _ = IN_USE.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(size as u64)));
    }
}

unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_feature_gate() {
        assert_eq!(stats().is_some(), cfg!(feature = "count-alloc"));
        if let Some(s) = stats() {
            // The test harness itself allocates, so the counters
            // must already be live and consistent.
            assert!(s.allocs > 0);
            assert!(s.peak >= s.in_use);
            assert!(s.bytes_total >= s.peak);
        }
    }

    #[test]
    fn shim_counts_without_being_global() {
        // Drive the shim directly (not as the global allocator) and
        // watch the counters move.
        use std::alloc::{GlobalAlloc, Layout};
        let before = ALLOCS.load(Relaxed);
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            CountingAlloc.dealloc(p, layout);
        }
        assert!(ALLOCS.load(Relaxed) > before);
    }
}
