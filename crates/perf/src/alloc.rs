//! Optional counting global allocator.
//!
//! With the `count-alloc` feature, `gperf` installs [`CountingAlloc`]
//! (a thin shim over the system allocator) as the process' global
//! allocator and keeps four relaxed atomics: allocation count, total
//! bytes ever allocated, current in-use bytes and the peak of that
//! high-water mark.  [`stats`] then reports `Some(AllocStats)`;
//! without the feature it reports `None` and the default allocator is
//! untouched — the counting path is compiled out entirely.
//!
//! The shim adds two or three relaxed atomic ops per allocation —
//! measurable on allocation-heavy code, which is exactly why it is a
//! feature and not a default.  Enable it via
//! `cargo run -p gridmon-bench --features alloc-profile ...`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// The four counters the shim maintains.  The accounting lives on a
/// struct (rather than bare statics) so its arithmetic — alloc and
/// realloc deltas, the peak high-water mark, saturating dealloc — is
/// unit-testable on a private instance without racing the live global
/// allocator.
pub struct AllocCounters {
    allocs: AtomicU64,
    bytes_total: AtomicU64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl AllocCounters {
    pub const fn new() -> AllocCounters {
        AllocCounters {
            allocs: AtomicU64::new(0),
            bytes_total: AtomicU64::new(0),
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    #[inline]
    fn on_alloc(&self, size: usize) {
        self.allocs.fetch_add(1, Relaxed);
        self.bytes_total.fetch_add(size as u64, Relaxed);
        let now = self.in_use.fetch_add(size as u64, Relaxed) + size as u64;
        self.peak.fetch_max(now, Relaxed);
    }

    #[inline]
    fn on_dealloc(&self, size: usize) {
        // Saturating: allocations made before the counters existed
        // (there are none when installed as the global allocator, but
        // stay defensive) must not wrap the gauge.
        let _ = self
            .in_use
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(size as u64)));
    }

    #[inline]
    fn on_realloc(&self, old_size: usize, new_size: usize) {
        // A realloc counts as one allocation event: the old block is
        // retired and the new size is charged.
        self.on_dealloc(old_size);
        self.on_alloc(new_size);
    }

    fn snapshot(&self) -> AllocStats {
        AllocStats {
            allocs: self.allocs.load(Relaxed),
            bytes_total: self.bytes_total.load(Relaxed),
            in_use: self.in_use.load(Relaxed),
            peak: self.peak.load(Relaxed),
        }
    }

    fn reset_peak(&self) {
        self.peak.store(self.in_use.load(Relaxed), Relaxed);
    }
}

impl Default for AllocCounters {
    fn default() -> Self {
        AllocCounters::new()
    }
}

static COUNTERS: AllocCounters = AllocCounters::new();

/// Snapshot of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations since process start (reallocs count as one).
    pub allocs: u64,
    /// Cumulative bytes ever handed out.
    pub bytes_total: u64,
    /// Bytes currently in use.
    pub in_use: u64,
    /// High-water mark of `in_use`.
    pub peak: u64,
}

/// Allocator counters, or `None` when the `count-alloc` feature (and
/// with it the counting allocator) is not compiled in.
pub fn stats() -> Option<AllocStats> {
    if !cfg!(feature = "count-alloc") {
        return None;
    }
    Some(COUNTERS.snapshot())
}

/// Restart the peak-bytes high-water mark from the current in-use
/// level, so the next [`stats`] reports the peak *of the phase that
/// follows* rather than of the whole process lifetime.  A no-op
/// without the `count-alloc` feature.
pub fn reset_peak() {
    COUNTERS.reset_peak();
}

/// The counting shim over [`std::alloc::System`].
pub struct CountingAlloc;

unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            COUNTERS.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        COUNTERS.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            COUNTERS.on_realloc(layout.size(), new_size);
        }
        p
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_feature_gate() {
        assert_eq!(stats().is_some(), cfg!(feature = "count-alloc"));
        if let Some(s) = stats() {
            // The test harness itself allocates, so the counters
            // must already be live and consistent.
            assert!(s.allocs > 0);
            assert!(s.peak >= s.in_use);
            assert!(s.bytes_total >= s.peak);
        }
    }

    #[test]
    fn alloc_dealloc_deltas() {
        let c = AllocCounters::new();
        c.on_alloc(64);
        c.on_alloc(32);
        let s = c.snapshot();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.bytes_total, 96);
        assert_eq!(s.in_use, 96);
        assert_eq!(s.peak, 96);
        c.on_dealloc(64);
        let s = c.snapshot();
        assert_eq!(s.allocs, 2, "deallocs do not count as allocations");
        assert_eq!(s.bytes_total, 96, "bytes_total is cumulative");
        assert_eq!(s.in_use, 32);
        assert_eq!(s.peak, 96, "peak survives the release");
    }

    #[test]
    fn realloc_counts_one_allocation_and_moves_the_gauge() {
        let c = AllocCounters::new();
        c.on_alloc(100);
        // Grow: gauge follows the new size, one more allocation event.
        c.on_realloc(100, 150);
        let s = c.snapshot();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.bytes_total, 250);
        assert_eq!(s.in_use, 150);
        assert_eq!(s.peak, 150);
        // Shrink: gauge drops, peak stays at the high-water mark.
        c.on_realloc(150, 10);
        let s = c.snapshot();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.in_use, 10);
        assert_eq!(s.peak, 150);
    }

    #[test]
    fn peak_is_a_high_water_mark_and_resets_to_in_use() {
        let c = AllocCounters::new();
        c.on_alloc(1000);
        c.on_dealloc(1000);
        c.on_alloc(10);
        let s = c.snapshot();
        assert_eq!(s.in_use, 10);
        assert_eq!(s.peak, 1000, "peak remembers the spike");
        c.reset_peak();
        let s = c.snapshot();
        assert_eq!(s.peak, 10, "reset restarts the mark from in_use");
        c.on_alloc(5);
        assert_eq!(c.snapshot().peak, 15, "post-reset growth tracked");
    }

    #[test]
    fn dealloc_saturates_instead_of_wrapping() {
        let c = AllocCounters::new();
        c.on_alloc(8);
        c.on_dealloc(100); // more than ever allocated
        let s = c.snapshot();
        assert_eq!(s.in_use, 0, "gauge saturates at zero");
        c.on_alloc(16);
        assert_eq!(c.snapshot().in_use, 16, "gauge recovers cleanly");
    }

    #[test]
    fn shim_counts_without_being_global() {
        // Drive the shim directly (not as the global allocator) and
        // watch the counters move.
        use std::alloc::{GlobalAlloc, Layout};
        let before = COUNTERS.snapshot().allocs;
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            CountingAlloc.dealloc(p, layout);
        }
        assert!(COUNTERS.snapshot().allocs > before);
    }
}
