//! The `perf.json` profile report.
//!
//! [`perf_json`] serializes a [`PerfSink`] into a schema-versioned
//! JSON document (`gridmon-perf-v1`): coarse phases, cache traffic,
//! per-worker pool attribution, allocator counters (when compiled in)
//! and one row per point.  `figures --perf` writes it next to the
//! figure CSVs and `gridmon-inspect --profile RUN_DIR` renders it back
//! into tables.  No external JSON dependency: the writer below emits
//! the document directly (readers use the in-tree parser in
//! `gridmon-trace`).

use crate::alloc;
use crate::point::PerfSink;

/// Schema tag of the emitted document; bump on layout changes so
/// readers can reject files they do not understand.
pub const PERF_SCHEMA: &str = "gridmon-perf-v1";

/// Escape `s` as the body of a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float for JSON: finite shortest-roundtrip, with the
/// non-finite values JSON cannot carry mapped to null.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize `sink` as a `gridmon-perf-v1` document.
pub fn perf_json(sink: &PerfSink) -> String {
    let mut out = String::with_capacity(4096 + sink.points.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{PERF_SCHEMA}\",\n"));

    out.push_str("  \"phases\": [");
    for (i, (name, wall)) in sink.phases.entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"wall_s\": {}}}",
            json_escape(name),
            json_f64(wall.as_secs_f64())
        ));
    }
    out.push_str("\n  ],\n");

    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"bytes_read\": {}, \"bytes_written\": {}}},\n",
        sink.cache.hits, sink.cache.misses, sink.cache.bytes_read, sink.cache.bytes_written
    ));

    out.push_str(&format!(
        "  \"pool\": {{\"workers\": {}, \"wall_s\": {}, \"busy_share\": {}, \"busy_s\": [{}], \"jobs\": [{}]}},\n",
        sink.pool.workers,
        json_f64(sink.pool.wall.as_secs_f64()),
        json_f64(sink.pool.busy_share()),
        sink.pool
            .busy
            .iter()
            .map(|d| json_f64(d.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(", "),
        sink.pool
            .jobs
            .iter()
            .map(|j| j.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));

    match alloc::stats() {
        Some(a) => out.push_str(&format!(
            "  \"alloc\": {{\"allocs\": {}, \"bytes_total\": {}, \"in_use\": {}, \"peak\": {}}},\n",
            a.allocs, a.bytes_total, a.in_use, a.peak
        )),
        None => out.push_str("  \"alloc\": null,\n"),
    }

    let t = sink.totals();
    out.push_str(&format!(
        "  \"totals\": {{\"executed\": {}, \"cached\": {}, \"exec_wall_s\": {}, \"sim_s\": {}, \"events\": {}, \"popped\": {}, \"advances\": {}, \"events_per_sec\": {}}},\n",
        t.executed,
        t.cached,
        json_f64(t.exec_wall.as_secs_f64()),
        json_f64(t.sim_us as f64 / 1e6),
        t.events,
        t.popped,
        t.advances,
        json_f64(t.events_per_sec())
    ));

    out.push_str("  \"points\": [");
    for (i, p) in sink.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"key\": \"{}\", \"worker\": {}, \"cached\": {}, \"wall_s\": {}, \"sim_s\": {}, \"events\": {}, \"popped\": {}, \"advances\": {}, \"engine_runs\": {}, \"events_per_sec\": {}}}",
            json_escape(&p.key),
            p.worker,
            p.cached,
            json_f64(p.wall.as_secs_f64()),
            json_f64(p.sim_s()),
            p.sim.events,
            p.sim.popped,
            p.sim.advances,
            p.sim.engine_runs,
            json_f64(p.events_per_sec())
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{PointSample, SimCounters};
    use std::time::Duration;

    #[test]
    fn report_carries_schema_and_rows() {
        let mut sink = PerfSink::new();
        sink.phases.add("execute", Duration::from_millis(12));
        sink.record_pool_run(2, Duration::from_millis(12));
        sink.record_miss();
        sink.record_executed(
            "set1/MDS GRIS (cache)/x=10".into(),
            1,
            PointSample {
                wall: Duration::from_millis(10),
                sim: SimCounters {
                    sim_us: 60_000_000,
                    events: 1234,
                    popped: 1250,
                    advances: 0,
                    engine_runs: 1,
                },
            },
        );
        sink.record_cached("set1/MDS GRIS (cache)/x=20".into(), Duration::ZERO, 99);
        let doc = perf_json(&sink);
        assert!(doc.contains("\"schema\": \"gridmon-perf-v1\""));
        assert!(doc.contains("set1/MDS GRIS (cache)/x=10"));
        assert!(doc.contains("\"events\": 1234"));
        assert!(doc.contains("\"hits\": 1"));
        assert!(doc.contains("\"misses\": 1"));
        assert!(doc.contains("\"workers\": 2"));
        // Valid-JSON smoke: balanced braces/brackets at the ends.
        assert!(doc.trim_start().starts_with('{') && doc.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_and_non_finite_floats() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
