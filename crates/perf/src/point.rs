//! Per-point execution records and the [`PerfSink`] that collects them.
//!
//! One [`PointRecord`] per sweep point: how long the point took on the
//! wall clock, how much simulated time it covered, how many engine
//! events it dispatched (so `events / wall` is the simulator's
//! hot-path speed in sim-events per wall second), whether it was
//! served from the result cache, and which pool worker ran it.  The
//! sink also aggregates cache traffic ([`CacheStats`]) and per-worker
//! busy/idle attribution ([`PoolStats`]).
//!
//! The sweep engine fills a sink when (and only when) the caller
//! passes one; with no sink alive [`crate::profiling`] is false and
//! every instrumentation site short-circuits.

use crate::phase::Phases;
use crate::ProfileGuard;
use std::time::Duration;

/// Engine-side counters harvested from one point's simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCounters {
    /// Simulated microseconds covered (summed over the point's engine
    /// runs; warm-up included).
    pub sim_us: u64,
    /// Events dispatched (`Engine::fired`).
    pub events: u64,
    /// Calendar pops including stale/cancelled keys (`Engine::popped`).
    pub popped: u64,
    /// Strict clock advances (`Engine::advances`): dispatches where the
    /// simulated clock actually moved.
    pub advances: u64,
    /// Harness runs that reported into this point.
    pub engine_runs: u32,
}

impl SimCounters {
    pub const ZERO: SimCounters = SimCounters {
        sim_us: 0,
        events: 0,
        popped: 0,
        advances: 0,
        engine_runs: 0,
    };
}

/// What [`crate::measure_point`] hands back: wall time plus the
/// engine counters the run reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSample {
    pub wall: Duration,
    pub sim: SimCounters,
}

/// One executed (or cache-served) sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// The point's stable identity (`setN/<series>/x=<x>`, `ext/...`).
    pub key: String,
    /// Pool worker that ran it (0 for the inline sequential path and
    /// for cache hits, which resolve on the submitting thread).
    pub worker: usize,
    /// Served from the result cache (no simulation executed)?
    pub cached: bool,
    /// Wall-clock cost (execution, or cache load + decode).
    pub wall: Duration,
    /// Engine counters (all zero for cache hits).
    pub sim: SimCounters,
}

impl PointRecord {
    /// Simulated seconds covered.
    pub fn sim_s(&self) -> f64 {
        self.sim.sim_us as f64 / 1e6
    }

    /// Simulator speed: engine events dispatched per wall second
    /// (0.0 for cache hits and zero-length walls).
    pub fn events_per_sec(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.sim.events as f64 / w
        } else {
            0.0
        }
    }

    /// Time-compression ratio: simulated seconds per wall second.
    pub fn sim_ratio(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.sim_s() / w
        } else {
            0.0
        }
    }
}

/// Result-cache traffic over a profiled run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Bytes of cache records read on hits.
    pub bytes_read: u64,
    /// Bytes of fresh records written back.
    pub bytes_written: u64,
}

/// Per-worker busy/idle attribution over a profiled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Resolved worker count of the widest sweep the sink saw.
    pub workers: usize,
    /// Busy wall time per worker (sum of executed-point walls).
    pub busy: Vec<Duration>,
    /// Executed points per worker.
    pub jobs: Vec<usize>,
    /// Wall time of the sweeps' execution phases (accumulated).
    pub wall: Duration,
}

impl PoolStats {
    fn reserve(&mut self, worker: usize) {
        if self.busy.len() <= worker {
            self.busy.resize(worker + 1, Duration::ZERO);
            self.jobs.resize(worker + 1, 0);
        }
    }

    /// Total busy time across workers.
    pub fn busy_total(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Fraction of `workers x wall` worker-time spent executing points
    /// (the remainder is idle / steal / collect time).  0.0 when no
    /// execution wall was recorded.
    pub fn busy_share(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity > 0.0 {
            (self.busy_total().as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        }
    }
}

/// The collector a profiled sweep writes into.  Holding one keeps
/// [`crate::profiling`] true; dropping the last sink returns every
/// instrumentation site to its one-branch disabled cost.
#[derive(Debug)]
pub struct PerfSink {
    _guard: ProfileGuard,
    /// Coarse wall-clock stages (enumerate / cache probe / execute /
    /// report), fed by the harness binaries.
    pub phases: Phases,
    /// One record per point, in completion order.
    pub points: Vec<PointRecord>,
    pub cache: CacheStats,
    pub pool: PoolStats,
}

impl Default for PerfSink {
    fn default() -> Self {
        PerfSink::new()
    }
}

impl PerfSink {
    pub fn new() -> PerfSink {
        PerfSink {
            _guard: ProfileGuard::new(),
            phases: Phases::new(),
            points: Vec::new(),
            cache: CacheStats::default(),
            pool: PoolStats::default(),
        }
    }

    /// Record one executed point with its worker attribution.
    pub fn record_executed(&mut self, key: String, worker: usize, sample: PointSample) {
        self.pool.reserve(worker);
        self.pool.busy[worker] += sample.wall;
        self.pool.jobs[worker] += 1;
        self.points.push(PointRecord {
            key,
            worker,
            cached: false,
            wall: sample.wall,
            sim: sample.sim,
        });
    }

    /// Record one cache-served point (`wall` = load + decode time).
    pub fn record_cached(&mut self, key: String, wall: Duration, bytes: u64) {
        self.cache.hits += 1;
        self.cache.bytes_read += bytes;
        self.points.push(PointRecord {
            key,
            worker: 0,
            cached: true,
            wall,
            sim: SimCounters::ZERO,
        });
    }

    /// Record a cache miss (the execution record follows separately).
    pub fn record_miss(&mut self) {
        self.cache.misses += 1;
    }

    /// Record bytes written back to the cache for a fresh result.
    pub fn record_store(&mut self, bytes: u64) {
        self.cache.bytes_written += bytes;
    }

    /// Note an execution phase: resolved worker count and its wall
    /// time (accumulating across sweeps feeding the same sink).
    pub fn record_pool_run(&mut self, workers: usize, wall: Duration) {
        self.pool.workers = self.pool.workers.max(workers);
        self.pool.reserve(workers.saturating_sub(1));
        self.pool.wall += wall;
    }

    /// Executed (non-cached) records.
    pub fn executed(&self) -> impl Iterator<Item = &PointRecord> {
        self.points.iter().filter(|p| !p.cached)
    }

    /// Aggregate totals over every record in the sink.
    pub fn totals(&self) -> Totals {
        let mut t = Totals::default();
        for p in &self.points {
            if p.cached {
                t.cached += 1;
            } else {
                t.executed += 1;
                t.exec_wall += p.wall;
                t.sim_us += p.sim.sim_us;
                t.events += p.sim.events;
                t.popped += p.sim.popped;
                t.advances += p.sim.advances;
            }
        }
        t
    }
}

/// Sink-wide aggregates (executed points only, except `cached`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    pub executed: u64,
    pub cached: u64,
    pub exec_wall: Duration,
    pub sim_us: u64,
    pub events: u64,
    pub popped: u64,
    pub advances: u64,
}

impl Totals {
    /// Aggregate simulator speed: events per wall second summed over
    /// executed points (0.0 when nothing executed).
    pub fn events_per_sec(&self) -> f64 {
        let w = self.exec_wall.as_secs_f64();
        if w > 0.0 {
            self.events as f64 / w
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(wall_ms: u64, events: u64) -> PointSample {
        PointSample {
            wall: Duration::from_millis(wall_ms),
            sim: SimCounters {
                sim_us: 2_000_000,
                events,
                popped: events + 5,
                advances: events,
                engine_runs: 1,
            },
        }
    }

    #[test]
    fn records_attribute_workers_and_cache() {
        let mut sink = PerfSink::new();
        sink.record_pool_run(2, Duration::from_millis(30));
        sink.record_miss();
        sink.record_miss();
        sink.record_executed("a".into(), 0, sample(10, 1000));
        sink.record_executed("b".into(), 1, sample(20, 3000));
        sink.record_store(64);
        sink.record_cached("c".into(), Duration::from_micros(50), 128);

        assert_eq!(sink.points.len(), 3);
        assert_eq!(sink.cache.hits, 1);
        assert_eq!(sink.cache.misses, 2);
        assert_eq!(sink.cache.bytes_read, 128);
        assert_eq!(sink.cache.bytes_written, 64);
        assert_eq!(sink.pool.workers, 2);
        assert_eq!(sink.pool.jobs, vec![1, 1]);
        assert_eq!(sink.pool.busy[1], Duration::from_millis(20));
        // Busy share: 30 ms busy over 2 x 30 ms capacity.
        assert!((sink.pool.busy_share() - 0.5).abs() < 1e-9);

        let t = sink.totals();
        assert_eq!((t.executed, t.cached), (2, 1));
        assert_eq!(t.events, 4000);
        assert!((t.events_per_sec() - 4000.0 / 0.030).abs() < 1.0);
    }

    #[test]
    fn point_metrics_derive() {
        let p = PointRecord {
            key: "k".into(),
            worker: 0,
            cached: false,
            wall: Duration::from_millis(500),
            sim: SimCounters {
                sim_us: 1_000_000,
                events: 50_000,
                popped: 50_100,
                advances: 49_000,
                engine_runs: 1,
            },
        };
        assert!((p.sim_s() - 1.0).abs() < 1e-12);
        assert!((p.events_per_sec() - 100_000.0).abs() < 1e-6);
        assert!((p.sim_ratio() - 2.0).abs() < 1e-12);
        let hit = PointRecord {
            cached: true,
            wall: Duration::ZERO,
            sim: SimCounters::ZERO,
            ..p
        };
        assert_eq!(hit.events_per_sec(), 0.0);
        assert_eq!(hit.sim_ratio(), 0.0);
    }
}
