//! # gridmon-perf — the instrument turned on the instrument
//!
//! The workspace measures monitoring systems under load; this crate
//! measures the harness itself, so the "as fast as the hardware
//! allows" claim is anchored in numbers rather than vibes.  It
//! provides, mirroring the `gridmon-trace` zero-cost-when-off
//! discipline:
//!
//! * [`phase`] — scoped wall-clock phase timers ([`Phases`] +
//!   drop-guard [`PhaseScope`](phase::PhaseScope)) for the coarse
//!   stages of a run (enumerate, cache probe, execute, report).
//! * [`point`] — per-point execution records ([`PointRecord`]): wall
//!   time vs simulated time, engine events processed, simulated
//!   events per wall second, cache hit/miss and worker attribution —
//!   collected into a [`PerfSink`] the sweep engine threads through.
//! * [`alloc`] — an optional counting global allocator (feature
//!   `count-alloc`): allocation count, cumulative bytes and peak
//!   in-use bytes.  The default build never touches the allocator.
//! * [`report`] — the schema-versioned `perf.json` writer
//!   ([`report::perf_json`]) consumed by `gridmon-inspect --profile`.
//!
//! ## Zero-cost-when-off contract
//!
//! The only instrumentation that reaches simulation code is
//! [`sim_report`], called once per completed harness run (not per
//! event).  It is gated on a process-wide relaxed atomic that counts
//! live [`PerfSink`]s: with no sink alive the call is one predictable
//! branch, and the engine's own counters (`fired`, `popped`,
//! `advances`) are plain `u64` increments that exist regardless.  The
//! overhead bench in `crates/bench` pins the disabled-profiling cost
//! of a whole figure point below the same <2 % budget as tracing.
//!
//! Profiling never perturbs results: it draws no randomness, schedules
//! no events and only *reads* engine counters after a run completes,
//! so figure CSVs are byte-identical with profiling on or off (pinned
//! by `tests/parallel_figures.rs`).

pub mod alloc;
pub mod phase;
pub mod point;
pub mod report;

pub use phase::Phases;
pub use point::{CacheStats, PerfSink, PointRecord, PointSample, PoolStats, SimCounters};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of live [`PerfSink`]s (a refcount, not a flag, so two
/// concurrently profiled sweeps — e.g. parallel tests — cannot switch
/// each other off).
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

/// Is any profile collecting?  One relaxed load; the branch is
/// predictable because the answer almost never changes mid-run.
#[inline(always)]
pub fn profiling() -> bool {
    ACTIVE_SINKS.load(Ordering::Relaxed) != 0
}

/// RAII token keeping [`profiling`] true; held by every [`PerfSink`].
#[derive(Debug)]
pub(crate) struct ProfileGuard(());

impl ProfileGuard {
    pub(crate) fn new() -> ProfileGuard {
        ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
        ProfileGuard(())
    }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    /// Scratch accumulator for the point currently executing on this
    /// thread.  Each sweep worker runs one point at a time, so a plain
    /// `Cell` is enough; [`measure_point`] resets it around the run.
    static SCRATCH: Cell<SimCounters> = const { Cell::new(SimCounters::ZERO) };
}

/// Report one completed engine run's counters into the active point's
/// scratch.  Called by the deployment harness after a simulation
/// finishes; a no-op (one branch) unless a profile is collecting.
///
/// Accumulates: a point that runs several harnesses (some extension
/// studies do) reports the sum of their simulated spans and events.
#[inline]
pub fn sim_report(sim_end_us: u64, fired: u64, popped: u64, advances: u64) {
    if !profiling() {
        return;
    }
    SCRATCH.with(|s| {
        let mut c = s.get();
        c.engine_runs += 1;
        c.sim_us += sim_end_us;
        c.events += fired;
        c.popped += popped;
        c.advances += advances;
        s.set(c);
    });
}

/// Run `f` as one profiled point: reset this thread's scratch, execute,
/// and return the result together with the harvested [`PointSample`]
/// (wall time + whatever [`sim_report`] accumulated).
pub fn measure_point<R>(f: impl FnOnce() -> R) -> (R, PointSample) {
    SCRATCH.with(|s| s.set(SimCounters::ZERO));
    let t0 = Instant::now();
    let result = f();
    let wall = t0.elapsed();
    let sim = SCRATCH.with(|s| s.replace(SimCounters::ZERO));
    (result, PointSample { wall, sim })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_report_is_inert_without_a_sink() {
        // No sink alive (tests in this crate never leak one): scratch
        // stays zero even after reporting.
        assert!(!profiling() || ACTIVE_SINKS.load(Ordering::Relaxed) > 0);
        let (_, sample) = measure_point(|| {
            sim_report(1_000_000, 500, 600, 400);
        });
        if !profiling() {
            assert_eq!(sample.sim, SimCounters::ZERO);
        }
    }

    #[test]
    fn sink_enables_collection_and_drop_disables() {
        let sink = PerfSink::new();
        assert!(profiling());
        let (value, sample) = measure_point(|| {
            sim_report(2_000_000, 100, 120, 90);
            sim_report(1_000_000, 50, 60, 40);
            7
        });
        assert_eq!(value, 7);
        assert_eq!(sample.sim.engine_runs, 2);
        assert_eq!(sample.sim.sim_us, 3_000_000);
        assert_eq!(sample.sim.events, 150);
        assert_eq!(sample.sim.popped, 180);
        assert_eq!(sample.sim.advances, 130);
        drop(sink);
    }

    #[test]
    fn nested_sinks_refcount() {
        let a = PerfSink::new();
        let b = PerfSink::new();
        drop(a);
        assert!(profiling(), "second sink keeps profiling on");
        drop(b);
    }
}
