//! Deterministic, schedule-driven fault injection.
//!
//! A [`FaultPlan`] is a list of typed fault events, each bound to an exact
//! simulated instant: host crash/restart, link degradation (partition and
//! heal), connection-drop bursts, and server freeze/thaw (GC-pause style
//! stalls).  A [`FaultDriver`] walks the plan in time order and applies each
//! event to a [`simnet::Net`] through its fault API; the monitoring services
//! under test react only through their *existing* soft-state machinery
//! (registration TTLs, re-registration timers, heartbeats) — the injector
//! never reaches into protocol state.
//!
//! # Determinism
//!
//! Fault injection must not perturb the no-fault trajectory of a run, and
//! two runs with the same seed and plan must be bit-identical:
//!
//! * Plans are pure data, built once from a [`FaultSpec`] before the run
//!   starts.  Nothing in this crate draws random numbers, so the simulation
//!   RNG stream is untouched: an empty plan reproduces the no-fault run
//!   byte-for-byte.
//! * Events carry exact `SimTime` instants.  The harness runs the engine
//!   *up to* the next fault instant, applies every due event, and resumes —
//!   so fault application interleaves with simulation events at a single
//!   well-defined point regardless of host scheduling or worker count.
//! * [`FaultPlan::stable_hash`] folds every event into an FNV-1a digest.
//!   The runner mixes this (via [`FaultSpec::fingerprint`]) into its cache
//!   digest so cached results can never be served across different fault
//!   schedules.

use simcore::{SimDuration, SimTime};
use simnet::{Eng, LinkId, Net, SvcKey};

/// Link capacity (bits/second) used to model a partition: low enough that
/// nothing useful transfers inside a run, non-zero so the flow model stays
/// well-defined.  Capacities at or below this trace as `fault_partition`;
/// restoring anything above it traces as `fault_heal`.
pub const PARTITION_BPS: f64 = 1.0;

/// Which family of faults a run injects.  `targets` on [`FaultSpec`] says
/// how many components are hit; the experiment code decides *which* ones
/// (deterministically, by deployment order).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scenario {
    /// No faults: the plan is empty and the run is byte-identical to a
    /// run without any fault machinery.
    #[default]
    None,
    /// Kill `targets` components, then restart them at the heal instant.
    /// Recovery rides on each service's own re-registration machinery.
    Churn,
    /// Degrade the network links of `targets` hosts to ~zero capacity
    /// (a partition that heals at the heal instant).
    Partition,
    /// Freeze `targets` servers (GC-pause stall): accepted work makes no
    /// progress until the thaw.
    Freeze,
    /// Drop every new connection to `targets` servers for the window.
    ConnBurst,
    /// Per-series default: each experiment series picks the scenario that
    /// stresses its system's weak point (resolved by the experiment code).
    Auto,
}

impl Scenario {
    pub fn name(self) -> &'static str {
        match self {
            Scenario::None => "none",
            Scenario::Churn => "churn",
            Scenario::Partition => "partition",
            Scenario::Freeze => "freeze",
            Scenario::ConnBurst => "connburst",
            Scenario::Auto => "auto",
        }
    }

    /// Parse a scenario name as accepted by the `--faults` CLI flag.
    pub fn parse(s: &str) -> Option<Scenario> {
        Some(match s {
            "none" => Scenario::None,
            "churn" => Scenario::Churn,
            "partition" => Scenario::Partition,
            "freeze" => Scenario::Freeze,
            "connburst" => Scenario::ConnBurst,
            "auto" => Scenario::Auto,
            _ => return None,
        })
    }
}

/// Declarative description of the faults a run should inject, small enough
/// to live on the run configuration (`Copy`) and stable enough to
/// fingerprint into a cache digest.  The experiment code turns a spec into
/// a concrete [`FaultPlan`] once the deployment (service keys, link ids)
/// is known.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultSpec {
    pub scenario: Scenario,
    /// How many components (servers, links, agents) are faulted.
    pub targets: u32,
    /// Fault onset, as a fraction of the measurement window (0.0..1.0),
    /// measured from the start of the *stats window* (after warmup).
    pub start_frac: f64,
    /// Heal/restart instant as a fraction of the measurement window.
    /// Scenarios without a heal step ignore it.
    pub heal_frac: f64,
}

impl FaultSpec {
    /// The no-fault spec: empty plan, byte-identical runs.
    pub const NONE: FaultSpec = FaultSpec {
        scenario: Scenario::None,
        targets: 0,
        start_frac: 0.0,
        heal_frac: 0.0,
    };

    pub fn is_none(&self) -> bool {
        self.scenario == Scenario::None || self.targets == 0
    }

    /// Stable text form mixed into the runner's cache digest.  The f64
    /// fractions are rendered as exact bit patterns so two specs collide
    /// only if they are numerically identical.
    pub fn fingerprint(&self) -> String {
        if self.is_none() {
            return "faults=none".to_string();
        }
        format!(
            "faults={},targets={},start={:016x},heal={:016x}",
            self.scenario.name(),
            self.targets,
            self.start_frac.to_bits(),
            self.heal_frac.to_bits()
        )
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// One typed fault, resolved to concrete simulation handles.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Kill a service process: in-flight requests fail, new connections
    /// are refused, pending timers die.
    Crash { svc: SvcKey },
    /// Bring a crashed service back with empty pools, and re-prime its
    /// periodic timers (`(delay, tag)` pairs) so soft-state recovery —
    /// re-registration, heartbeats — restarts from the fresh process.
    Restart {
        svc: SvcKey,
        prime: Vec<(SimDuration, u64)>,
    },
    /// Stall a server until `until`: connections are still accepted but
    /// no plan makes progress (GC-pause / overload stall).
    Freeze { svc: SvcKey, until: SimTime },
    /// Refuse every new connection to a server until `until`.
    DropConns { svc: SvcKey, until: SimTime },
    /// Set a link's capacity (bits/second).  Near-zero capacity is a
    /// partition; restoring the original capacity is the heal.
    SetLinkCapacity { link: LinkId, bps: f64 },
}

impl FaultAction {
    fn fold_hash(&self, h: &mut Fnv) {
        match self {
            FaultAction::Crash { svc } => {
                h.byte(1);
                h.u32(svc.index);
                h.u32(svc.gen);
            }
            FaultAction::Restart { svc, prime } => {
                h.byte(2);
                h.u32(svc.index);
                h.u32(svc.gen);
                h.u64(prime.len() as u64);
                for (d, tag) in prime {
                    h.u64(d.as_micros());
                    h.u64(*tag);
                }
            }
            FaultAction::Freeze { svc, until } => {
                h.byte(3);
                h.u32(svc.index);
                h.u32(svc.gen);
                h.u64(until.as_micros());
            }
            FaultAction::DropConns { svc, until } => {
                h.byte(4);
                h.u32(svc.index);
                h.u32(svc.gen);
                h.u64(until.as_micros());
            }
            FaultAction::SetLinkCapacity { link, bps } => {
                h.byte(5);
                h.u32(link.0);
                h.u64(bps.to_bits());
            }
        }
    }
}

/// A fault bound to the instant it fires.
#[derive(Clone, Debug)]
pub struct BoundFault {
    pub at: SimTime,
    pub action: FaultAction,
}

/// An ordered schedule of faults.  Events pushed out of order are sorted
/// (stably, so same-instant events keep insertion order) when the plan is
/// handed to a [`FaultDriver`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub events: Vec<BoundFault>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.events.push(BoundFault { at, action });
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// FNV-1a digest over every event (instants, targets, parameters).
    /// Stable across processes and platforms; used to make fault schedules
    /// part of cache identity.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.events.len() as u64);
        for ev in &self.events {
            h.u64(ev.at.as_micros());
            ev.action.fold_hash(&mut h);
        }
        h.finish()
    }
}

/// Applies a [`FaultPlan`] to a running simulation.  The harness asks
/// [`next_at`](FaultDriver::next_at) how far it may run the engine, then
/// calls [`apply_due`](FaultDriver::apply_due) once the clock reaches that
/// instant.
pub struct FaultDriver {
    plan: FaultPlan,
    cursor: usize,
}

impl FaultDriver {
    pub fn new(mut plan: FaultPlan) -> Self {
        plan.events.sort_by_key(|e| e.at);
        FaultDriver { plan, cursor: 0 }
    }

    /// The instant of the next unapplied fault, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.plan.events.get(self.cursor).map(|e| e.at)
    }

    /// True once every event has been applied.
    pub fn done(&self) -> bool {
        self.cursor >= self.plan.events.len()
    }

    /// Apply every event with `at <= now`, in schedule order.
    pub fn apply_due(&mut self, net: &mut Net, eng: &mut Eng, now: SimTime) {
        while let Some(ev) = self.plan.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            let action = ev.action.clone();
            self.cursor += 1;
            Self::apply(net, eng, action);
        }
    }

    // The `Net` fault hooks emit their own `fault_*` trace instants and
    // `fault.*` counters, so applying an action needs no extra reporting.
    fn apply(net: &mut Net, eng: &mut Eng, action: FaultAction) {
        match action {
            FaultAction::Crash { svc } => {
                if !net.service_down(svc) {
                    net.crash_service(eng, svc);
                }
            }
            FaultAction::Restart { svc, prime } => {
                if net.service_down(svc) {
                    net.restart_service(eng, svc);
                    for (dur, tag) in prime {
                        net.prime_service_timer(eng, svc, dur, tag);
                    }
                }
            }
            FaultAction::Freeze { svc, until } => {
                net.freeze_service(eng, svc, until);
            }
            FaultAction::DropConns { svc, until } => {
                net.drop_conns_until(eng, svc, until);
            }
            FaultAction::SetLinkCapacity { link, bps } => {
                net.set_link_capacity(eng, link, bps);
            }
        }
    }
}

/// Minimal FNV-1a accumulator (shared idiom with the runner's digests;
/// kept local so this crate has no extra dependencies).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{
        Client, ClientCx, Payload, Plan, ReqOutcome, ReqResult, RequestSpec, Service,
        ServiceConfig, StatsHub, SvcCx, Topology,
    };
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Echo;
    impl Service for Echo {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new().cpu(500.0).reply(String::from("ok"), 256)
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    struct Every {
        from: simnet::NodeId,
        to: SvcKey,
        period: SimDuration,
        log: Rc<RefCell<Vec<(f64, bool)>>>,
    }
    impl Client for Every {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.wake_in(SimDuration::ZERO, 0);
        }
        fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(String::from("q")),
                    req_bytes: 256,
                },
                0,
            );
            cx.wake_in(self.period, 0);
        }
        fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
            let ok = matches!(outcome.result, ReqResult::Ok(..));
            self.log.borrow_mut().push((cx.now().as_secs_f64(), ok));
        }
    }

    fn small_world() -> (Net, Eng, simnet::NodeId, SvcKey) {
        let mut topo = Topology::new();
        let a = topo.add_node("client", 2, 1.0);
        let b = topo.add_node("server", 2, 1.0);
        topo.connect(a, b, 100e6, SimDuration::from_micros(500));
        let stats = StatsHub::new(SimTime::ZERO, SimTime::from_secs(1000));
        let mut eng = Eng::new(7);
        let mut net = Net::new(topo, stats);
        let svc = net.add_service(b, ServiceConfig::default(), Box::new(Echo), &mut eng);
        (net, eng, a, svc)
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut d = FaultDriver::new(FaultPlan::new());
        assert!(d.done());
        assert_eq!(d.next_at(), None);
        let (mut net, mut eng, _, _) = small_world();
        d.apply_due(&mut net, &mut eng, SimTime::from_secs(100));
        assert!(d.done());
    }

    #[test]
    fn events_sort_and_apply_in_order() {
        let (mut net, mut eng, a, svc) = small_world();
        let log = Rc::new(RefCell::new(Vec::new()));
        net.add_client(Box::new(Every {
            from: a,
            to: svc,
            period: SimDuration::from_secs(2),
            log: log.clone(),
        }));

        // Pushed out of order: restart at 10s, crash at 5s.
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::from_secs(10),
            FaultAction::Restart {
                svc,
                prime: Vec::new(),
            },
        );
        plan.push(SimTime::from_secs(5), FaultAction::Crash { svc });
        let mut driver = FaultDriver::new(plan);
        assert_eq!(driver.next_at(), Some(SimTime::from_secs(5)));

        net.start(&mut eng);
        let until = SimTime::from_secs(20);
        let mut now = SimTime::ZERO;
        while now < until {
            let stop = driver.next_at().map_or(until, |t| t.min(until));
            eng.run_until(&mut net, stop);
            now = stop;
            driver.apply_due(&mut net, &mut eng, now);
        }
        assert!(driver.done());

        let log = log.borrow();
        // Queries at 0,2,4 succeed; 6,8 fail (down); 10.. succeed again.
        for (at, ok) in log.iter() {
            let expect = *at < 5.0 || *at >= 10.0;
            assert_eq!(*ok, expect, "query at {at}s: ok={ok}");
        }
        assert!(log.iter().any(|(at, _)| *at > 5.0 && *at < 10.0));
        assert!(log.iter().any(|(at, ok)| *at > 10.0 && *ok));
    }

    #[test]
    fn restart_reprimes_timers() {
        // A crashed service's periodic timer chain dies with the process;
        // the Restart action must restore it.
        struct Beacon {
            fired: Rc<RefCell<Vec<f64>>>,
        }
        impl Service for Beacon {
            fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
                Plan::new().reply(String::from("ok"), 64)
            }
            fn on_timer(&mut self, _tag: u64, cx: &mut SvcCx) {
                self.fired.borrow_mut().push(cx.now.as_secs_f64());
                cx.set_timer(SimDuration::from_secs(2), 0);
            }
            fn name(&self) -> &str {
                "beacon"
            }
        }

        let mut topo = Topology::new();
        let _a = topo.add_node("client", 2, 1.0);
        let b = topo.add_node("server", 2, 1.0);
        let stats = StatsHub::new(SimTime::ZERO, SimTime::from_secs(1000));
        let mut eng = Eng::new(7);
        let mut net = Net::new(topo, stats);
        let fired = Rc::new(RefCell::new(Vec::new()));
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Beacon {
                fired: fired.clone(),
            }),
            &mut eng,
        );
        net.prime_service_timer(&mut eng, svc, SimDuration::from_secs(2), 0);

        let mut plan = FaultPlan::new();
        plan.push(SimTime::from_secs(5), FaultAction::Crash { svc });
        plan.push(
            SimTime::from_secs(11),
            FaultAction::Restart {
                svc,
                prime: vec![(SimDuration::from_secs(2), 0)],
            },
        );
        let mut driver = FaultDriver::new(plan);

        net.start(&mut eng);
        let until = SimTime::from_secs(20);
        let mut now = SimTime::ZERO;
        while now < until {
            let stop = driver.next_at().map_or(until, |t| t.min(until));
            eng.run_until(&mut net, stop);
            now = stop;
            driver.apply_due(&mut net, &mut eng, now);
        }

        let fired = fired.borrow();
        // Ticks at 2,4 then silence until the re-primed tick at 13,15,...
        assert!(fired.contains(&2.0) && fired.contains(&4.0));
        assert!(!fired.iter().any(|t| *t > 5.0 && *t < 13.0));
        assert!(fired.contains(&13.0) && fired.contains(&15.0));
    }

    #[test]
    fn stable_hash_distinguishes_plans() {
        let svc = SvcKey { index: 3, gen: 1 };
        let mut a = FaultPlan::new();
        a.push(SimTime::from_secs(5), FaultAction::Crash { svc });
        let mut b = FaultPlan::new();
        b.push(SimTime::from_secs(5), FaultAction::Crash { svc });
        assert_eq!(a.stable_hash(), b.stable_hash());

        let mut c = FaultPlan::new();
        c.push(SimTime::from_secs(6), FaultAction::Crash { svc });
        assert_ne!(a.stable_hash(), c.stable_hash());

        let mut d = FaultPlan::new();
        d.push(
            SimTime::from_secs(5),
            FaultAction::Freeze {
                svc,
                until: SimTime::from_secs(9),
            },
        );
        assert_ne!(a.stable_hash(), d.stable_hash());
        assert_ne!(FaultPlan::new().stable_hash(), a.stable_hash());
    }

    #[test]
    fn spec_fingerprints() {
        assert_eq!(FaultSpec::NONE.fingerprint(), "faults=none");
        let s = FaultSpec {
            scenario: Scenario::Churn,
            targets: 3,
            start_frac: 0.25,
            heal_frac: 0.75,
        };
        let t = FaultSpec { targets: 4, ..s };
        assert_ne!(s.fingerprint(), t.fingerprint());
        assert!(s.fingerprint().starts_with("faults=churn,targets=3,"));
        // targets == 0 means no faults regardless of scenario.
        let z = FaultSpec { targets: 0, ..s };
        assert!(z.is_none());
        assert_eq!(z.fingerprint(), "faults=none");
    }

    #[test]
    fn scenario_parse_round_trips() {
        for sc in [
            Scenario::None,
            Scenario::Churn,
            Scenario::Partition,
            Scenario::Freeze,
            Scenario::ConnBurst,
            Scenario::Auto,
        ] {
            assert_eq!(Scenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(Scenario::parse("meteor"), None);
    }
}
