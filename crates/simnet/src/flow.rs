//! Flow-level bulk transfers with max-min fair bandwidth sharing.
//!
//! Every data transfer (a request body, a response body, a ClassAd
//! advertisement) is a *flow*: an amount of bits moving along a fixed path
//! of directed links.  Concurrent flows share each link's capacity; the
//! achieved rate vector is the classic **max-min fair allocation**, computed
//! by water-filling and re-computed whenever the set of flows changes.
//! This is the standard fluid abstraction of long-lived TCP used by
//! flow-level network simulators.
//!
//! `FlowNet` is a pure state machine (no event scheduling): the owner asks
//! [`FlowNet::next_completion`] after every mutation and manages a single
//! pending event.

use crate::topology::{LinkId, Topology};
use simcore::slab::{Slab, SlabKey};
use simcore::SimTime;

/// Opaque token the owner uses to identify a flow's purpose.
pub type FlowToken = u64;

/// Key identifying a flow.
pub type FlowKey = SlabKey;

#[derive(Debug, Clone)]
struct Flow {
    path: Vec<LinkId>,
    /// Remaining payload in bits.
    remaining: f64,
    /// Current rate in bits per microsecond.
    rate: f64,
    token: FlowToken,
}

/// The set of active flows plus the fair-share computation.
///
/// The rate vector is maintained *incrementally*: a mutation re-levels only
/// the connected component of flows that share links with the mutated flow
/// (often just the flow itself), producing bit-identical rates to a
/// from-scratch water-filling.  `Clone` exists so the differential test
/// suite can snapshot a net and replay the reference kernel on the copy.
#[derive(Clone)]
pub struct FlowNet {
    flows: Slab<Flow>,
    /// Flows currently crossing each link, indexed by `LinkId`.  This is
    /// what lets a mutation find its affected component without scanning
    /// every flow.
    link_flows: Vec<Vec<FlowKey>>,
    last: SimTime,
    /// Rate vector stale?  Only transiently true inside a mutation; every
    /// public method restores exactness before returning.
    dirty: bool,
    /// Total bytes completed (for stats).
    pub bits_delivered: f64,
}

/// Rate used for empty-path (same-host) flows: effectively instantaneous.
const LOCAL_RATE_BITS_PER_US: f64 = 1e9; // 1 Tbit/s

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    pub fn new() -> Self {
        FlowNet {
            flows: Slab::new(),
            link_flows: Vec::new(),
            last: SimTime::ZERO,
            dirty: false,
            bits_delivered: 0.0,
        }
    }

    fn register_links(link_flows: &mut Vec<Vec<FlowKey>>, key: FlowKey, path: &[LinkId]) {
        for l in path {
            let li = l.0 as usize;
            if li >= link_flows.len() {
                link_flows.resize_with(li + 1, Vec::new);
            }
            link_flows[li].push(key);
        }
    }

    fn unregister_links(link_flows: &mut [Vec<FlowKey>], key: FlowKey, path: &[LinkId]) {
        for l in path {
            let v = &mut link_flows[l.0 as usize];
            if let Some(pos) = v.iter().position(|&k| k == key) {
                v.swap_remove(pos);
            }
        }
    }

    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Advance all flows to `now`, returning the tokens of flows that have
    /// completed (in key order).  The caller must then `recompute` (which
    /// happens automatically here) and re-query `next_completion`.
    pub fn advance(&mut self, topo: &Topology, now: SimTime) -> Vec<FlowToken> {
        debug_assert!(now >= self.last);
        let dt = (now - self.last).as_micros() as f64;
        self.last = now;
        let mut done: Vec<FlowKey> = Vec::new();
        if dt > 0.0 {
            for (k, f) in self.flows.iter_mut() {
                f.remaining -= f.rate * dt;
                if f.remaining <= 1e-6 {
                    done.push(k);
                }
            }
        } else {
            for (k, f) in self.flows.iter() {
                if f.remaining <= 1e-6 {
                    done.push(k);
                }
            }
        }
        let mut tokens = Vec::with_capacity(done.len());
        let mut seeds: Vec<LinkId> = Vec::new();
        for k in done {
            if let Some(f) = self.flows.remove(k) {
                Self::unregister_links(&mut self.link_flows, k, &f.path);
                seeds.extend_from_slice(&f.path);
                tokens.push(f.token);
            }
        }
        if !seeds.is_empty() {
            // Only flows sharing links with the departed ones can change
            // rate; empty-path completions leave the vector untouched.
            self.relevel_component(topo, &seeds);
        }
        tokens
    }

    /// Start a flow of `bytes` bytes along `path` (may be empty for
    /// same-host transfers).  The caller must have advanced to `now` first.
    pub fn start(
        &mut self,
        topo: &Topology,
        now: SimTime,
        path: Vec<LinkId>,
        bytes: u64,
        token: FlowToken,
    ) -> FlowKey {
        debug_assert_eq!(self.last, now, "advance() before start()");
        let bits = (bytes.max(1) * 8) as f64;
        self.bits_delivered += bits; // count on start; completion is certain

        // Same-host transfer: fixed local rate, nobody else affected.
        if path.is_empty() {
            return self.flows.insert(Flow {
                path,
                remaining: bits,
                rate: LOCAL_RATE_BITS_PER_US,
                token,
            });
        }

        // Alone on every link of a simple path: the water-filler would put
        // this flow in a component by itself and assign the minimum link
        // share.  (A path that revisits a link self-contends, so it takes
        // the general route.)
        let disjoint = path
            .iter()
            .all(|l| self.link_flows.get(l.0 as usize).is_none_or(Vec::is_empty))
            && !path.iter().enumerate().any(|(i, l)| path[..i].contains(l));
        if disjoint {
            let mut share = f64::INFINITY;
            for l in &path {
                let s = topo.link(*l).capacity_bps / 1e6;
                if s < share {
                    share = s;
                }
            }
            let key = self.flows.insert(Flow {
                path,
                remaining: bits,
                rate: share.max(0.0).max(1e-9),
                token,
            });
            let f = self.flows.get(key).unwrap();
            Self::register_links(&mut self.link_flows, key, &f.path);
            return key;
        }

        // Shares a link with live flows: re-level just that component.
        let key = self.flows.insert(Flow {
            path,
            remaining: bits,
            rate: 0.0,
            token,
        });
        let f = self.flows.get(key).unwrap();
        let seeds = f.path.clone();
        Self::register_links(&mut self.link_flows, key, &f.path);
        self.relevel_component(topo, &seeds);
        key
    }

    /// Abort a flow (e.g. a failed request).  Returns its token.
    pub fn abort(&mut self, topo: &Topology, key: FlowKey) -> Option<FlowToken> {
        let f = self.flows.remove(key)?;
        Self::unregister_links(&mut self.link_flows, key, &f.path);
        if !f.path.is_empty() {
            self.relevel_component(topo, &f.path);
        }
        Some(f.token)
    }

    /// Re-derive the fair-share allocation after a link capacity changed
    /// underneath the active flows (fault injection: partition / heal).
    /// The caller must have advanced to the current time first.
    pub fn capacity_changed(&mut self, topo: &Topology) {
        self.dirty = true;
        self.recompute(topo);
    }

    /// The earliest absolute time at which some flow completes.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert!(!self.dirty);
        let mut best = f64::INFINITY;
        for (_, f) in self.flows.iter() {
            if f.rate > 0.0 {
                best = best.min(f.remaining / f.rate);
            }
        }
        if best.is_finite() {
            Some(SimTime(
                now.as_micros().saturating_add((best.ceil() as u64).max(1)),
            ))
        } else {
            None
        }
    }

    /// Current rate of a flow in bits/µs (for tests).
    pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
        self.flows.get(key).map(|f| f.rate)
    }

    /// Visit every active flow's `(token, rate)` in key order, rate in
    /// bits/µs — how the tracer snapshots the rate vector after a
    /// fair-share recomputation.
    pub fn for_each_rate(&self, mut f: impl FnMut(FlowToken, f64)) {
        for (_, flow) in self.flows.iter() {
            f(flow.token, flow.rate);
        }
    }

    /// Re-level the connected component of flows reachable from `seeds`
    /// (links connected through shared flows).  Runs the same restricted
    /// water-filling arithmetic as [`FlowNet::recompute`] — bottleneck
    /// links scanned in ascending index order with a strictly-smaller
    /// comparison, flows fixed in slab-key order — so the resulting rates
    /// are bit-identical to a from-scratch pass.  Flows outside the
    /// component keep their (already exact) rates.
    fn relevel_component(&mut self, topo: &Topology, seeds: &[LinkId]) {
        let n_links = topo.link_count();
        let mut in_comp_link = vec![false; n_links];
        let mut stack: Vec<usize> = Vec::new();
        for l in seeds {
            let li = l.0 as usize;
            if !in_comp_link[li] {
                in_comp_link[li] = true;
                stack.push(li);
            }
        }
        let mut comp_flows: Vec<FlowKey> = Vec::new();
        let mut seen_flow: std::collections::HashSet<FlowKey> = std::collections::HashSet::new();
        while let Some(li) = stack.pop() {
            let crossing_here = self.link_flows.get(li).map(Vec::as_slice).unwrap_or(&[]);
            for &k in crossing_here {
                if seen_flow.insert(k) {
                    comp_flows.push(k);
                }
            }
        }
        // Pull in the full link set of every component flow (a flow found
        // via one link drags its other links — and their flows — in).
        let mut i = 0;
        while i < comp_flows.len() {
            let k = comp_flows[i];
            i += 1;
            let path = &self.flows.get(k).unwrap().path;
            let mut new_links: Vec<usize> = Vec::new();
            for l in path {
                let lj = l.0 as usize;
                if !in_comp_link[lj] {
                    in_comp_link[lj] = true;
                    new_links.push(lj);
                }
            }
            for lj in new_links {
                let crossing_here = self.link_flows.get(lj).map(Vec::as_slice).unwrap_or(&[]);
                for &k2 in crossing_here {
                    if seen_flow.insert(k2) {
                        comp_flows.push(k2);
                    }
                }
            }
        }
        if comp_flows.is_empty() {
            return;
        }
        comp_flows.sort_unstable(); // slab-key order, as recompute() fixes them

        let comp_links: Vec<usize> = (0..n_links).filter(|&l| in_comp_link[l]).collect();
        let mut residual: Vec<f64> = vec![0.0; n_links];
        let mut crossing: Vec<u32> = vec![0; n_links];
        for &li in &comp_links {
            residual[li] = topo.link(LinkId(li as u32)).capacity_bps / 1e6;
        }
        for &k in &comp_flows {
            for l in &self.flows.get(k).unwrap().path {
                crossing[l.0 as usize] += 1;
            }
        }

        let mut unfixed = comp_flows;
        while !unfixed.is_empty() {
            let mut bottleneck: Option<(usize, f64)> = None;
            for &l in &comp_links {
                if crossing[l] > 0 {
                    let share = residual[l] / crossing[l] as f64;
                    if bottleneck.is_none_or(|(_, s)| share < s) {
                        bottleneck = Some((l, share));
                    }
                }
            }
            let Some((bl, share)) = bottleneck else { break };
            let share = share.max(0.0);
            let mut still_unfixed = Vec::with_capacity(unfixed.len());
            for &k in &unfixed {
                let f = self.flows.get(k).unwrap();
                if f.path.iter().any(|l| l.0 as usize == bl) {
                    for l in &f.path {
                        let li = l.0 as usize;
                        crossing[li] -= 1;
                        residual[li] = (residual[li] - share).max(0.0);
                    }
                    self.flows.get_mut(k).unwrap().rate = share.max(1e-9);
                } else {
                    still_unfixed.push(k);
                }
            }
            debug_assert!(still_unfixed.len() < unfixed.len(), "water-filling stuck");
            unfixed = still_unfixed;
        }
    }

    /// Recompute the max-min fair rate allocation by water-filling.
    fn recompute(&mut self, topo: &Topology) {
        self.dirty = false;
        let n_links = topo.link_count();
        // Residual capacity per link in bits/µs and number of unfixed flows
        // crossing it.
        let mut residual: Vec<f64> = (0..n_links)
            .map(|i| topo.link(LinkId(i as u32)).capacity_bps / 1e6)
            .collect();
        let mut crossing: Vec<u32> = vec![0; n_links];

        let keys: Vec<FlowKey> = self.flows.keys();
        let mut unfixed: Vec<FlowKey> = Vec::with_capacity(keys.len());
        for &k in &keys {
            let f = self.flows.get_mut(k).unwrap();
            if f.path.is_empty() {
                f.rate = LOCAL_RATE_BITS_PER_US;
            } else {
                for l in &f.path {
                    crossing[l.0 as usize] += 1;
                }
                unfixed.push(k);
            }
        }

        // Water-filling: repeatedly find the bottleneck link (minimum fair
        // share), fix all flows crossing it at that share, and remove their
        // demand from other links.
        while !unfixed.is_empty() {
            let mut bottleneck: Option<(usize, f64)> = None;
            for l in 0..n_links {
                if crossing[l] > 0 {
                    let share = residual[l] / crossing[l] as f64;
                    if bottleneck.is_none_or(|(_, s)| share < s) {
                        bottleneck = Some((l, share));
                    }
                }
            }
            let Some((bl, share)) = bottleneck else { break };
            let share = share.max(0.0);
            // Fix every unfixed flow crossing the bottleneck.
            let mut still_unfixed = Vec::with_capacity(unfixed.len());
            for &k in &unfixed {
                let f = self.flows.get(k).unwrap();
                if f.path.iter().any(|l| l.0 as usize == bl) {
                    for l in &f.path {
                        let li = l.0 as usize;
                        crossing[li] -= 1;
                        residual[li] = (residual[li] - share).max(0.0);
                    }
                    self.flows.get_mut(k).unwrap().rate = share.max(1e-9);
                } else {
                    still_unfixed.push(k);
                }
            }
            debug_assert!(still_unfixed.len() < unfixed.len(), "water-filling stuck");
            unfixed = still_unfixed;
        }
    }
}

/// Differential-oracle surface: the from-scratch water-filler is the
/// reference the incremental kernel is checked against.  It stays compiled
/// in unconditionally (capacity changes use it); the feature only names it
/// for the gridmon-diff suite.
#[cfg(feature = "reference-kernel")]
impl FlowNet {
    /// Overwrite every rate by running the full water-filling pass.
    pub fn recompute_reference(&mut self, topo: &Topology) {
        self.dirty = true;
        self.recompute(topo);
    }

    /// Snapshot `(token, rate)` pairs in key order, for oracle comparison.
    pub fn rates_reference(&self) -> Vec<(FlowToken, f64)> {
        let mut out = Vec::with_capacity(self.flows.len());
        self.for_each_rate(|t, r| out.push((t, r)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn topo_two_links() -> (Topology, LinkId, LinkId) {
        let mut t = Topology::new();
        let _a = t.add_node("a", 1, 1.0);
        let _b = t.add_node("b", 1, 1.0);
        // 8 bits/µs = 8 Mbit/s and 4 bits/µs links for easy math.
        let l1 = t.add_link("l1", 8e6, SimDuration::from_micros(10));
        let l2 = t.add_link("l2", 4e6, SimDuration::from_micros(10));
        (t, l1, l2)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k = fnet.start(&t, SimTime(0), vec![l1], 1000, 1); // 8000 bits
        assert_eq!(fnet.rate_of(k), Some(8.0));
        // 8000 bits at 8 bits/µs -> 1000 µs.
        assert_eq!(fnet.next_completion(SimTime(0)), Some(SimTime(1000)));
        let done = fnet.advance(&t, SimTime(1000));
        assert_eq!(done, vec![1]);
        assert_eq!(fnet.active(), 0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k1 = fnet.start(&t, SimTime(0), vec![l1], 1000, 1);
        let k2 = fnet.start(&t, SimTime(0), vec![l1], 1000, 2);
        assert_eq!(fnet.rate_of(k1), Some(4.0));
        assert_eq!(fnet.rate_of(k2), Some(4.0));
        // Each needs 8000/4 = 2000µs.
        let done = fnet.advance(&t, SimTime(2000));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn completion_speeds_up_remaining_flow() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let _k1 = fnet.start(&t, SimTime(0), vec![l1], 500, 1); // 4000 bits
        let k2 = fnet.start(&t, SimTime(0), vec![l1], 1000, 2); // 8000 bits
                                                                // Shared at 4 each; flow 1 finishes at 1000µs.
        let t1 = fnet.next_completion(SimTime(0)).unwrap();
        assert_eq!(t1, SimTime(1000));
        let done = fnet.advance(&t, t1);
        assert_eq!(done, vec![1]);
        // Flow 2 has 4000 bits left, now at 8 bits/µs -> 500µs more.
        assert_eq!(fnet.rate_of(k2), Some(8.0));
        assert_eq!(fnet.next_completion(t1), Some(SimTime(1500)));
    }

    #[test]
    fn bottleneck_path_max_min() {
        let (t, l1, l2) = topo_two_links();
        let mut fnet = FlowNet::new();
        // Flow A crosses both links, flow B only the fat link.
        let ka = fnet.start(&t, SimTime(0), vec![l1, l2], 8000, 1);
        let kb = fnet.start(&t, SimTime(0), vec![l1], 8000, 2);
        // Bottleneck: l2 (4 bits/µs, 1 flow) -> A gets 4. B then gets the
        // rest of l1: 8 - 4 = 4.
        assert_eq!(fnet.rate_of(ka), Some(4.0));
        assert_eq!(fnet.rate_of(kb), Some(4.0));
        // Add a second l1-only flow: l1 fair share becomes min. With 3 flows
        // on l1: share 8/3 ≈ 2.67 < l2's 4 -> all fixed at 2.67... then A is
        // also limited by l1.
        let kc = fnet.start(&t, SimTime(0), vec![l1], 8000, 3);
        let ra = fnet.rate_of(ka).unwrap();
        let rb = fnet.rate_of(kb).unwrap();
        let rc = fnet.rate_of(kc).unwrap();
        assert!((ra - 8.0 / 3.0).abs() < 1e-9);
        assert!((rb - 8.0 / 3.0).abs() < 1e-9);
        assert!((rc - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn local_flow_is_instant() {
        let (t, _, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        fnet.start(&t, SimTime(0), vec![], 1_000_000, 9);
        let next = fnet.next_completion(SimTime(0)).unwrap();
        assert!(next.as_micros() <= 10);
        assert_eq!(fnet.advance(&t, next), vec![9]);
    }

    #[test]
    fn abort_removes_and_rebalances() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k1 = fnet.start(&t, SimTime(0), vec![l1], 1000, 1);
        let k2 = fnet.start(&t, SimTime(0), vec![l1], 1000, 2);
        assert_eq!(fnet.abort(&t, k1), Some(1));
        assert_eq!(fnet.rate_of(k2), Some(8.0));
        assert_eq!(fnet.active(), 1);
    }

    #[test]
    fn conservation_no_link_oversubscribed() {
        // Many random flows; verify sum of rates on each link <= capacity.
        let mut t = Topology::new();
        let _ = t.add_node("x", 1, 1.0);
        let links: Vec<LinkId> = (0..5)
            .map(|i| t.add_link(format!("l{i}"), (i as f64 + 1.0) * 1e6, SimDuration::ZERO))
            .collect();
        let mut fnet = FlowNet::new();
        let mut rng = simcore::SimRng::new(99);
        let mut keys = Vec::new();
        for tok in 0..40u64 {
            let mut path = Vec::new();
            for &l in &links {
                if rng.chance(0.4) {
                    path.push(l);
                }
            }
            if path.is_empty() {
                path.push(links[0]);
            }
            keys.push(fnet.start(&t, SimTime(0), path.clone(), 10_000, tok));
        }
        // Check link loads.
        let mut load = vec![0.0f64; 5];
        for (i, &k) in keys.iter().enumerate() {
            let _ = i;
            let rate = fnet.rate_of(k).unwrap();
            // Re-derive the path from rate bookkeeping: instead verify via
            // public API by aborting and checking rebalance monotonicity.
            assert!(rate > 0.0);
            let _ = &mut load;
        }
        // Direct invariant: advance far and ensure all complete.
        let mut now = SimTime(0);
        let mut completed = 0;
        while fnet.active() > 0 {
            let nxt = fnet.next_completion(now).expect("progress");
            assert!(nxt > now);
            now = nxt;
            completed += fnet.advance(&t, now).len();
        }
        assert_eq!(completed, 40);
    }

    #[test]
    fn zero_byte_flow_still_completes() {
        // A zero-length payload is clamped to one byte (8 bits) so the
        // flow always makes progress and completes.
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k = fnet.start(&t, SimTime(0), vec![l1], 0, 7);
        assert_eq!(fnet.rate_of(k), Some(8.0));
        let next = fnet.next_completion(SimTime(0)).expect("completes");
        assert!(next > SimTime(0));
        assert_eq!(fnet.advance(&t, next), vec![7]);
        // Same for a zero-byte local (empty-path) flow.
        fnet.start(&t, next, vec![], 0, 8);
        let next2 = fnet.next_completion(next).expect("completes");
        assert_eq!(fnet.advance(&t, next2), vec![8]);
    }

    #[test]
    fn empty_path_flow_unaffected_by_recomputes() {
        // A local flow's rate must survive recomputations triggered by
        // link-flow churn happening at the same instant.
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let klocal = fnet.start(&t, SimTime(0), vec![], 1_000_000, 1);
        let rate0 = fnet.rate_of(klocal).unwrap();
        let ka = fnet.start(&t, SimTime(0), vec![l1], 1000, 2);
        let _kb = fnet.start(&t, SimTime(0), vec![l1], 1000, 3);
        assert_eq!(fnet.rate_of(klocal), Some(rate0));
        fnet.abort(&t, ka);
        fnet.capacity_changed(&t);
        assert_eq!(fnet.rate_of(klocal), Some(rate0));
        let done = fnet.advance(&t, fnet.next_completion(SimTime(0)).unwrap());
        assert_eq!(done, vec![1]);
    }

    #[test]
    fn next_completion_none_after_last_flow() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        fnet.start(&t, SimTime(0), vec![l1], 1000, 1);
        let end = fnet.next_completion(SimTime(0)).unwrap();
        assert_eq!(fnet.advance(&t, end), vec![1]);
        assert_eq!(fnet.active(), 0);
        assert_eq!(fnet.next_completion(end), None);
        // Still None after further idle advances.
        assert!(fnet.advance(&t, SimTime(end.as_micros() + 500)).is_empty());
        assert_eq!(fnet.next_completion(SimTime(end.as_micros() + 500)), None);
    }

    #[test]
    fn incremental_matches_full_recompute_bitexact() {
        // Drive a random start/abort/advance schedule and after every
        // mutation compare the incremental rate vector against a
        // from-scratch water-filling of the same flow set, bit for bit.
        let mut t = Topology::new();
        let _ = t.add_node("x", 1, 1.0);
        let links: Vec<LinkId> = (0..6)
            .map(|i| t.add_link(format!("l{i}"), (i as f64 + 1.0) * 0.7e6, SimDuration::ZERO))
            .collect();
        let mut fnet = FlowNet::new();
        let mut rng = simcore::SimRng::new(12345);
        let mut now = SimTime(0);
        let mut live: Vec<FlowKey> = Vec::new();

        let check = |fnet: &FlowNet, topo: &Topology| {
            let mut fast: Vec<(FlowToken, u64)> = Vec::new();
            fnet.for_each_rate(|tok, r| fast.push((tok, r.to_bits())));
            let mut oracle = fnet.clone();
            oracle.dirty = true;
            oracle.recompute(topo);
            let mut slow: Vec<(FlowToken, u64)> = Vec::new();
            oracle.for_each_rate(|tok, r| slow.push((tok, r.to_bits())));
            assert_eq!(fast, slow, "incremental diverged from full recompute");
        };

        for step in 0..200u64 {
            match rng.next_below(3) {
                0 => {
                    // Start a flow: sometimes local, sometimes multi-link.
                    let mut path = Vec::new();
                    for &l in &links {
                        if rng.chance(0.3) {
                            path.push(l);
                        }
                    }
                    let bytes = rng.next_below(50_000);
                    live.push(fnet.start(&t, now, path, bytes, step));
                }
                1 => {
                    if !live.is_empty() {
                        let i = rng.next_below(live.len() as u64) as usize;
                        let k = live.swap_remove(i);
                        fnet.abort(&t, k);
                    }
                }
                _ => {
                    if let Some(next) = fnet.next_completion(now) {
                        now = next;
                        fnet.advance(&t, now);
                        live.retain(|&k| fnet.rate_of(k).is_some());
                    }
                }
            }
            check(&fnet, &t);
        }
        // Drain to completion, checking along the way.
        while let Some(next) = fnet.next_completion(now) {
            now = next;
            fnet.advance(&t, now);
            check(&fnet, &t);
        }
        assert_eq!(fnet.active(), 0);
    }
}
