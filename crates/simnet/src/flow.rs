//! Flow-level bulk transfers with max-min fair bandwidth sharing.
//!
//! Every data transfer (a request body, a response body, a ClassAd
//! advertisement) is a *flow*: an amount of bits moving along a fixed path
//! of directed links.  Concurrent flows share each link's capacity; the
//! achieved rate vector is the classic **max-min fair allocation**, computed
//! by water-filling and re-computed whenever the set of flows changes.
//! This is the standard fluid abstraction of long-lived TCP used by
//! flow-level network simulators.
//!
//! `FlowNet` is a pure state machine (no event scheduling): the owner asks
//! [`FlowNet::next_completion`] after every mutation and manages a single
//! pending event.

use crate::topology::{LinkId, Topology};
use simcore::slab::{Slab, SlabKey};
use simcore::SimTime;

/// Opaque token the owner uses to identify a flow's purpose.
pub type FlowToken = u64;

/// Key identifying a flow.
pub type FlowKey = SlabKey;

#[derive(Debug)]
struct Flow {
    path: Vec<LinkId>,
    /// Remaining payload in bits.
    remaining: f64,
    /// Current rate in bits per microsecond.
    rate: f64,
    token: FlowToken,
}

/// The set of active flows plus the fair-share computation.
pub struct FlowNet {
    flows: Slab<Flow>,
    last: SimTime,
    /// Rate vector stale?  Set on add/remove; cleared by `recompute`.
    dirty: bool,
    /// Total bytes completed (for stats).
    pub bits_delivered: f64,
}

/// Rate used for empty-path (same-host) flows: effectively instantaneous.
const LOCAL_RATE_BITS_PER_US: f64 = 1e9; // 1 Tbit/s

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    pub fn new() -> Self {
        FlowNet {
            flows: Slab::new(),
            last: SimTime::ZERO,
            dirty: false,
            bits_delivered: 0.0,
        }
    }

    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Advance all flows to `now`, returning the tokens of flows that have
    /// completed (in key order).  The caller must then `recompute` (which
    /// happens automatically here) and re-query `next_completion`.
    pub fn advance(&mut self, topo: &Topology, now: SimTime) -> Vec<FlowToken> {
        debug_assert!(now >= self.last);
        let dt = (now - self.last).as_micros() as f64;
        self.last = now;
        let mut done: Vec<FlowKey> = Vec::new();
        if dt > 0.0 {
            for (k, f) in self.flows.iter_mut() {
                f.remaining -= f.rate * dt;
                if f.remaining <= 1e-6 {
                    done.push(k);
                }
            }
        } else {
            for (k, f) in self.flows.iter() {
                if f.remaining <= 1e-6 {
                    done.push(k);
                }
            }
        }
        let mut tokens = Vec::with_capacity(done.len());
        for k in done {
            if let Some(f) = self.flows.remove(k) {
                tokens.push(f.token);
            }
            self.dirty = true;
        }
        if self.dirty {
            self.recompute(topo);
        }
        tokens
    }

    /// Start a flow of `bytes` bytes along `path` (may be empty for
    /// same-host transfers).  The caller must have advanced to `now` first.
    pub fn start(
        &mut self,
        topo: &Topology,
        now: SimTime,
        path: Vec<LinkId>,
        bytes: u64,
        token: FlowToken,
    ) -> FlowKey {
        debug_assert_eq!(self.last, now, "advance() before start()");
        let bits = (bytes.max(1) * 8) as f64;
        self.bits_delivered += bits; // count on start; completion is certain
        let key = self.flows.insert(Flow {
            path,
            remaining: bits,
            rate: 0.0,
            token,
        });
        self.dirty = true;
        self.recompute(topo);
        key
    }

    /// Abort a flow (e.g. a failed request).  Returns its token.
    pub fn abort(&mut self, topo: &Topology, key: FlowKey) -> Option<FlowToken> {
        let f = self.flows.remove(key)?;
        self.dirty = true;
        self.recompute(topo);
        Some(f.token)
    }

    /// Re-derive the fair-share allocation after a link capacity changed
    /// underneath the active flows (fault injection: partition / heal).
    /// The caller must have advanced to the current time first.
    pub fn capacity_changed(&mut self, topo: &Topology) {
        self.dirty = true;
        self.recompute(topo);
    }

    /// The earliest absolute time at which some flow completes.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert!(!self.dirty);
        let mut best = f64::INFINITY;
        for (_, f) in self.flows.iter() {
            if f.rate > 0.0 {
                best = best.min(f.remaining / f.rate);
            }
        }
        if best.is_finite() {
            Some(SimTime(
                now.as_micros().saturating_add((best.ceil() as u64).max(1)),
            ))
        } else {
            None
        }
    }

    /// Current rate of a flow in bits/µs (for tests).
    pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
        self.flows.get(key).map(|f| f.rate)
    }

    /// Visit every active flow's `(token, rate)` in key order, rate in
    /// bits/µs — how the tracer snapshots the rate vector after a
    /// fair-share recomputation.
    pub fn for_each_rate(&self, mut f: impl FnMut(FlowToken, f64)) {
        for (_, flow) in self.flows.iter() {
            f(flow.token, flow.rate);
        }
    }

    /// Recompute the max-min fair rate allocation by water-filling.
    fn recompute(&mut self, topo: &Topology) {
        self.dirty = false;
        let n_links = topo.link_count();
        // Residual capacity per link in bits/µs and number of unfixed flows
        // crossing it.
        let mut residual: Vec<f64> = (0..n_links)
            .map(|i| topo.link(LinkId(i as u32)).capacity_bps / 1e6)
            .collect();
        let mut crossing: Vec<u32> = vec![0; n_links];

        let keys: Vec<FlowKey> = self.flows.keys();
        let mut unfixed: Vec<FlowKey> = Vec::with_capacity(keys.len());
        for &k in &keys {
            let f = self.flows.get_mut(k).unwrap();
            if f.path.is_empty() {
                f.rate = LOCAL_RATE_BITS_PER_US;
            } else {
                for l in &f.path {
                    crossing[l.0 as usize] += 1;
                }
                unfixed.push(k);
            }
        }

        // Water-filling: repeatedly find the bottleneck link (minimum fair
        // share), fix all flows crossing it at that share, and remove their
        // demand from other links.
        while !unfixed.is_empty() {
            let mut bottleneck: Option<(usize, f64)> = None;
            for l in 0..n_links {
                if crossing[l] > 0 {
                    let share = residual[l] / crossing[l] as f64;
                    if bottleneck.is_none_or(|(_, s)| share < s) {
                        bottleneck = Some((l, share));
                    }
                }
            }
            let Some((bl, share)) = bottleneck else { break };
            let share = share.max(0.0);
            // Fix every unfixed flow crossing the bottleneck.
            let mut still_unfixed = Vec::with_capacity(unfixed.len());
            for &k in &unfixed {
                let f = self.flows.get(k).unwrap();
                if f.path.iter().any(|l| l.0 as usize == bl) {
                    for l in &f.path {
                        let li = l.0 as usize;
                        crossing[li] -= 1;
                        residual[li] = (residual[li] - share).max(0.0);
                    }
                    self.flows.get_mut(k).unwrap().rate = share.max(1e-9);
                } else {
                    still_unfixed.push(k);
                }
            }
            debug_assert!(still_unfixed.len() < unfixed.len(), "water-filling stuck");
            unfixed = still_unfixed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn topo_two_links() -> (Topology, LinkId, LinkId) {
        let mut t = Topology::new();
        let _a = t.add_node("a", 1, 1.0);
        let _b = t.add_node("b", 1, 1.0);
        // 8 bits/µs = 8 Mbit/s and 4 bits/µs links for easy math.
        let l1 = t.add_link("l1", 8e6, SimDuration::from_micros(10));
        let l2 = t.add_link("l2", 4e6, SimDuration::from_micros(10));
        (t, l1, l2)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k = fnet.start(&t, SimTime(0), vec![l1], 1000, 1); // 8000 bits
        assert_eq!(fnet.rate_of(k), Some(8.0));
        // 8000 bits at 8 bits/µs -> 1000 µs.
        assert_eq!(fnet.next_completion(SimTime(0)), Some(SimTime(1000)));
        let done = fnet.advance(&t, SimTime(1000));
        assert_eq!(done, vec![1]);
        assert_eq!(fnet.active(), 0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k1 = fnet.start(&t, SimTime(0), vec![l1], 1000, 1);
        let k2 = fnet.start(&t, SimTime(0), vec![l1], 1000, 2);
        assert_eq!(fnet.rate_of(k1), Some(4.0));
        assert_eq!(fnet.rate_of(k2), Some(4.0));
        // Each needs 8000/4 = 2000µs.
        let done = fnet.advance(&t, SimTime(2000));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn completion_speeds_up_remaining_flow() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let _k1 = fnet.start(&t, SimTime(0), vec![l1], 500, 1); // 4000 bits
        let k2 = fnet.start(&t, SimTime(0), vec![l1], 1000, 2); // 8000 bits
                                                                // Shared at 4 each; flow 1 finishes at 1000µs.
        let t1 = fnet.next_completion(SimTime(0)).unwrap();
        assert_eq!(t1, SimTime(1000));
        let done = fnet.advance(&t, t1);
        assert_eq!(done, vec![1]);
        // Flow 2 has 4000 bits left, now at 8 bits/µs -> 500µs more.
        assert_eq!(fnet.rate_of(k2), Some(8.0));
        assert_eq!(fnet.next_completion(t1), Some(SimTime(1500)));
    }

    #[test]
    fn bottleneck_path_max_min() {
        let (t, l1, l2) = topo_two_links();
        let mut fnet = FlowNet::new();
        // Flow A crosses both links, flow B only the fat link.
        let ka = fnet.start(&t, SimTime(0), vec![l1, l2], 8000, 1);
        let kb = fnet.start(&t, SimTime(0), vec![l1], 8000, 2);
        // Bottleneck: l2 (4 bits/µs, 1 flow) -> A gets 4. B then gets the
        // rest of l1: 8 - 4 = 4.
        assert_eq!(fnet.rate_of(ka), Some(4.0));
        assert_eq!(fnet.rate_of(kb), Some(4.0));
        // Add a second l1-only flow: l1 fair share becomes min. With 3 flows
        // on l1: share 8/3 ≈ 2.67 < l2's 4 -> all fixed at 2.67... then A is
        // also limited by l1.
        let kc = fnet.start(&t, SimTime(0), vec![l1], 8000, 3);
        let ra = fnet.rate_of(ka).unwrap();
        let rb = fnet.rate_of(kb).unwrap();
        let rc = fnet.rate_of(kc).unwrap();
        assert!((ra - 8.0 / 3.0).abs() < 1e-9);
        assert!((rb - 8.0 / 3.0).abs() < 1e-9);
        assert!((rc - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn local_flow_is_instant() {
        let (t, _, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        fnet.start(&t, SimTime(0), vec![], 1_000_000, 9);
        let next = fnet.next_completion(SimTime(0)).unwrap();
        assert!(next.as_micros() <= 10);
        assert_eq!(fnet.advance(&t, next), vec![9]);
    }

    #[test]
    fn abort_removes_and_rebalances() {
        let (t, l1, _) = topo_two_links();
        let mut fnet = FlowNet::new();
        let k1 = fnet.start(&t, SimTime(0), vec![l1], 1000, 1);
        let k2 = fnet.start(&t, SimTime(0), vec![l1], 1000, 2);
        assert_eq!(fnet.abort(&t, k1), Some(1));
        assert_eq!(fnet.rate_of(k2), Some(8.0));
        assert_eq!(fnet.active(), 1);
    }

    #[test]
    fn conservation_no_link_oversubscribed() {
        // Many random flows; verify sum of rates on each link <= capacity.
        let mut t = Topology::new();
        let _ = t.add_node("x", 1, 1.0);
        let links: Vec<LinkId> = (0..5)
            .map(|i| t.add_link(format!("l{i}"), (i as f64 + 1.0) * 1e6, SimDuration::ZERO))
            .collect();
        let mut fnet = FlowNet::new();
        let mut rng = simcore::SimRng::new(99);
        let mut keys = Vec::new();
        for tok in 0..40u64 {
            let mut path = Vec::new();
            for &l in &links {
                if rng.chance(0.4) {
                    path.push(l);
                }
            }
            if path.is_empty() {
                path.push(links[0]);
            }
            keys.push(fnet.start(&t, SimTime(0), path.clone(), 10_000, tok));
        }
        // Check link loads.
        let mut load = vec![0.0f64; 5];
        for (i, &k) in keys.iter().enumerate() {
            let _ = i;
            let rate = fnet.rate_of(k).unwrap();
            // Re-derive the path from rate bookkeeping: instead verify via
            // public API by aborting and checking rebalance monotonicity.
            assert!(rate > 0.0);
            let _ = &mut load;
        }
        // Direct invariant: advance far and ensure all complete.
        let mut now = SimTime(0);
        let mut completed = 0;
        while fnet.active() > 0 {
            let nxt = fnet.next_completion(now).expect("progress");
            assert!(nxt > now);
            now = nxt;
            completed += fnet.advance(&t, now).len();
        }
        assert_eq!(completed, 40);
    }
}
