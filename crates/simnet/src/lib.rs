//! # simnet — flow-level network + service simulation
//!
//! Builds the distributed-system substrate on top of the [`simcore`] DES
//! kernel.  The model has four layers:
//!
//! 1. **Topology** ([`topology`]): named hosts (each owning a
//!    processor-sharing CPU), directed links with capacity and latency, and
//!    explicit routes.
//! 2. **Flows** ([`flow`]): bulk transfers share link bandwidth using
//!    max-min fairness, recomputed whenever a flow starts or finishes —
//!    the standard flow-level TCP abstraction.
//! 3. **Connections**: a client request first "connects" to the target
//!    service.  Each service has a bounded accept pool
//!    (concurrent-connection capacity plus a listen backlog); when both are
//!    full the connection is refused and the client must retry.  This is the
//!    mechanism behind the saturation thresholds the paper observes: beyond
//!    a point, "the network on the server side can no longer handle the
//!    traffic, which limits the number of concurrent queries presented to
//!    the information server".
//! 4. **Services and plans** ([`service`], [`net`]): a service handles a
//!    request by returning a [`service::Plan`] — a list of resource demands
//!    (CPU, latency, locks, sub-requests to other services, state-mutating
//!    effects, and finally a reply).  The [`net::Net`] world executes plans
//!    step by step against the simulated resources.
//!
//! The monitoring systems under study (MDS, R-GMA, Hawkeye) are implemented
//! as [`service::Service`] trait objects in their own crates; simulated
//! users are [`client::Client`] trait objects.

pub mod client;
pub mod flow;
pub mod net;
pub mod service;
pub mod stats;
pub mod topology;

/// Re-export of the observability crate: service crates reach the event
/// and metrics types through `simnet::trace::…` without a direct
/// dependency.
pub use gtrace as trace;
pub use gtrace::{Obs, ObsMode};

pub use client::{Client, ClientCx, ClientKey, ReqOutcome, ReqResult};
pub use net::{Eng, Net, RequestSpec};
pub use service::{
    CallOutcome, LockKey, Payload, Plan, Service, ServiceConfig, SetupCost, Step, SubCall,
    SvcAction, SvcCx, SvcKey,
};
pub use stats::StatsHub;
pub use topology::{LinkId, NodeId, Topology};
