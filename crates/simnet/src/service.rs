//! Services and execution plans.
//!
//! A [`Service`] is a simulated server process (a GRIS, a Registry, a
//! Hawkeye Manager...).  When a request arrives, the service's
//! [`Service::handle`] inspects the payload and its own state and returns a
//! [`Plan`]: the sequence of resource demands the request will exert.
//! Plans are executed by [`crate::net::Net`] against the host CPU, the
//! network, lock tables and other services.
//!
//! The split keeps protocol logic (in the `mds`/`rgma`/`hawkeye` crates)
//! free of event-scheduling concerns, and keeps the executor generic.

use crate::topology::NodeId;
use simcore::slab::SlabKey;
use simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;

/// Key identifying a deployed service instance.
pub type SvcKey = SlabKey;

/// Key identifying a lock registered with the world.
pub type LockKey = SlabKey;

/// Message payloads are dynamically typed; each protocol crate downcasts
/// to its own request/response enums.
pub type Payload = Box<dyn Any>;

/// One resource-demand step of a plan.
pub enum Step {
    /// Consume reference-CPU microseconds on the service's host.
    Cpu(f64),
    /// A fixed delay that consumes no shared resource (e.g. a disk seek or
    /// an authentication handshake dominated by round trips).
    Latency(SimDuration),
    /// Acquire a FIFO lock (blocks until granted).
    Lock(LockKey),
    /// Release a previously acquired lock.
    Unlock(LockKey),
    /// Invoke `Service::effect(code, arg)` — a state mutation that happens
    /// at this point of simulated time (e.g. "insert fetched data into the
    /// cache").
    Effect { code: u32, arg: u64 },
    /// Send a one-way message (no reply expected) to another service at
    /// this point of the plan, then continue with the next step.
    Send {
        to: SvcKey,
        payload: Payload,
        bytes: u64,
    },
    /// Issue sub-requests to other services and wait for all of them; the
    /// service's `resume(cont, outcomes)` is then called for the
    /// continuation plan.  Must be the final step of a plan.
    CallAll { calls: Vec<SubCall>, cont: u64 },
    /// Send the response (`bytes` on the wire) and finish.  Must be the
    /// final step of a plan.
    Reply { payload: Payload, bytes: u64 },
    /// Abort the request with an error: the requester sees a failure
    /// (e.g. a servlet whose backend is unreachable).  Must be the final
    /// step of a plan.
    Fail,
}

impl std::fmt::Debug for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Cpu(us) => write!(f, "Cpu({us}µs)"),
            Step::Latency(d) => write!(f, "Latency({d:?})"),
            Step::Lock(k) => write!(f, "Lock({k:?})"),
            Step::Unlock(k) => write!(f, "Unlock({k:?})"),
            Step::Effect { code, arg } => write!(f, "Effect({code},{arg})"),
            Step::Send { bytes, .. } => write!(f, "Send({bytes}B)"),
            Step::CallAll { calls, cont } => {
                write!(f, "CallAll(n={}, cont={cont})", calls.len())
            }
            Step::Reply { bytes, .. } => write!(f, "Reply({bytes}B)"),
            Step::Fail => write!(f, "Fail"),
        }
    }
}

/// A sub-request issued from within a plan.
pub struct SubCall {
    pub to: SvcKey,
    pub payload: Payload,
    pub req_bytes: u64,
}

/// Outcome of one sub-call, delivered to [`Service::resume`].
pub struct CallOutcome {
    /// Index in the original `calls` vector.
    pub index: u32,
    /// `Some((payload, bytes))` on success, `None` if the sub-request was
    /// refused or failed.
    pub response: Option<(Payload, u64)>,
}

/// An ordered list of steps.
pub struct Plan {
    pub steps: Vec<Step>,
}

impl Plan {
    pub fn new() -> Self {
        Plan { steps: Vec::new() }
    }

    /// A plan that replies immediately with an empty payload.
    pub fn reply_empty() -> Self {
        Plan::new().reply((), 64)
    }

    pub fn cpu(mut self, ref_cpu_us: f64) -> Self {
        self.steps.push(Step::Cpu(ref_cpu_us));
        self
    }

    pub fn latency(mut self, d: SimDuration) -> Self {
        self.steps.push(Step::Latency(d));
        self
    }

    pub fn lock(mut self, l: LockKey) -> Self {
        self.steps.push(Step::Lock(l));
        self
    }

    pub fn unlock(mut self, l: LockKey) -> Self {
        self.steps.push(Step::Unlock(l));
        self
    }

    pub fn effect(mut self, code: u32, arg: u64) -> Self {
        self.steps.push(Step::Effect { code, arg });
        self
    }

    pub fn send<T: Any>(mut self, to: SvcKey, payload: T, bytes: u64) -> Self {
        self.steps.push(Step::Send {
            to,
            payload: Box::new(payload),
            bytes,
        });
        self
    }

    pub fn call_all(mut self, calls: Vec<SubCall>, cont: u64) -> Self {
        self.steps.push(Step::CallAll { calls, cont });
        self
    }

    pub fn reply<T: Any>(mut self, payload: T, bytes: u64) -> Self {
        self.steps.push(Step::Reply {
            payload: Box::new(payload),
            bytes,
        });
        self
    }

    /// Terminate without sending a response (one-way messages).
    pub fn done(self) -> Self {
        self
    }

    /// Abort with an error after the accumulated steps.
    pub fn fail(mut self) -> Self {
        self.steps.push(Step::Fail);
        self
    }
}

impl Default for Plan {
    fn default() -> Self {
        Self::new()
    }
}

/// Deferred actions a service can emit from any callback (timers,
/// spontaneous one-way messages).  Applied by the world after the callback
/// returns.
pub enum SvcAction {
    /// Fire `on_timer(tag)` after `dur`.
    Timer { dur: SimDuration, tag: u64 },
    /// Send a one-way message (datagram-like: no connection, no response).
    OneWay {
        to: SvcKey,
        payload: Payload,
        bytes: u64,
    },
}

/// Context passed to service callbacks.
pub struct SvcCx<'a> {
    pub now: SimTime,
    /// The service's own key (available for self-addressed sub-calls).
    pub me: SvcKey,
    /// This service's deterministic RNG stream.
    pub rng: &'a mut SimRng,
    /// The world's observability sink: services report protocol-level
    /// events (cache hits, matchmaker evaluations, servlet queues) here.
    /// Free when observability is off.
    pub obs: &'a mut gtrace::Obs,
    pub(crate) actions: &'a mut Vec<SvcAction>,
}

impl<'a> SvcCx<'a> {
    /// Construct a bare context for driving a service outside a `Net`
    /// (unit tests of protocol crates).
    pub fn for_tests(
        now: SimTime,
        me: SvcKey,
        rng: &'a mut SimRng,
        obs: &'a mut gtrace::Obs,
        actions: &'a mut Vec<SvcAction>,
    ) -> SvcCx<'a> {
        SvcCx {
            now,
            me,
            rng,
            obs,
            actions,
        }
    }
}

impl SvcCx<'_> {
    pub fn set_timer(&mut self, dur: SimDuration, tag: u64) {
        self.actions.push(SvcAction::Timer { dur, tag });
    }

    pub fn send_oneway<T: Any>(&mut self, to: SvcKey, payload: T, bytes: u64) {
        self.actions.push(SvcAction::OneWay {
            to,
            payload: Box::new(payload),
            bytes,
        });
    }
}

/// Object-safe downcasting support, blanket-implemented for every concrete
/// type so [`Service`] implementations get it for free.
pub trait AsAny {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated server process.
pub trait Service: AsAny + 'static {
    /// A request has been fully received; return the execution plan.
    fn handle(&mut self, req: Payload, cx: &mut SvcCx) -> Plan;

    /// All sub-calls of a `CallAll` step completed; return the continuation
    /// plan.
    fn resume(&mut self, cont: u64, outcomes: Vec<CallOutcome>, cx: &mut SvcCx) -> Plan {
        let _ = (cont, outcomes, cx);
        Plan::reply_empty()
    }

    /// A timer set via [`SvcCx::set_timer`] fired.
    fn on_timer(&mut self, tag: u64, cx: &mut SvcCx) {
        let _ = (tag, cx);
    }

    /// A state mutation scheduled by a [`Step::Effect`] is due.
    fn effect(&mut self, code: u32, arg: u64, now: SimTime) {
        let _ = (code, arg, now);
    }

    /// Human-readable name for traces and panics.
    fn name(&self) -> &str {
        "service"
    }
}

/// Session-establishment cost between a client and this service.
///
/// MDS 2.1 performs a GSI-authenticated LDAP bind whose cost is dominated by
/// extra round trips and credential verification; other services have a
/// plain TCP handshake.  The fixed-latency component is *not* a shared
/// resource: it delays the requester without consuming server capacity.
#[derive(Debug, Clone, Copy)]
pub struct SetupCost {
    /// Extra round trips beyond the TCP handshake (TLS/GSI exchanges).
    pub extra_rtts: f64,
    /// Fixed additional latency (credential checks, delegation).
    pub fixed: SimDuration,
    /// Reference-CPU microseconds spent on the server per new session.
    pub server_cpu_us: f64,
}

impl SetupCost {
    /// A bare TCP handshake.
    pub fn plain() -> Self {
        SetupCost {
            extra_rtts: 0.0,
            fixed: SimDuration::ZERO,
            server_cpu_us: 50.0,
        }
    }
}

/// Static configuration of a deployed service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Max concurrently accepted connections.
    pub conn_capacity: u32,
    /// Listen-backlog length; connection attempts beyond
    /// `conn_capacity + backlog` are refused.
    pub backlog: u32,
    /// Worker threads executing plans (None = unlimited concurrency).
    pub workers: Option<u32>,
    /// Session-establishment cost.
    pub setup: SetupCost,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            conn_capacity: 1024,
            backlog: 128,
            workers: None,
            setup: SetupCost::plain(),
        }
    }
}

/// Per-service runtime counters.
#[derive(Debug, Default, Clone)]
pub struct ServiceStats {
    pub requests_handled: u64,
    pub replies_sent: u64,
    pub oneways_received: u64,
    pub conns_refused: u64,
}

/// A deployed service instance: the trait object plus its placement,
/// configuration and runtime resources.
pub struct ServiceSlot {
    pub node: NodeId,
    pub config: ServiceConfig,
    pub stats: ServiceStats,
    pub(crate) svc: Option<Box<dyn Service>>,
    pub(crate) conns: simcore::FifoTokens,
    pub(crate) workers: Option<simcore::FifoTokens>,
    pub(crate) rng: SimRng,
    /// Fault injection: the host process is crashed.  New connections are
    /// refused and timer chains are silenced until a restart.
    pub(crate) down: bool,
    /// Fault injection: a GC-pause-style stall.  Plans started before this
    /// instant gain a latency step covering the remainder of the stall,
    /// and timers are deferred to it.
    pub(crate) frozen_until: SimTime,
    /// Fault injection: force-drop new connection attempts until this
    /// instant (models a SYN-drop burst without taking the process down).
    pub(crate) dropping_until: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_orders_steps() {
        let p = Plan::new()
            .cpu(10.0)
            .latency(SimDuration::from_millis(1))
            .effect(7, 9)
            .reply("ok", 128);
        assert_eq!(p.steps.len(), 4);
        assert!(matches!(p.steps[0], Step::Cpu(x) if x == 10.0));
        assert!(matches!(p.steps[3], Step::Reply { bytes: 128, .. }));
    }

    #[test]
    fn default_config_sane() {
        let c = ServiceConfig::default();
        assert!(c.conn_capacity > 0);
        assert!(c.workers.is_none());
        assert_eq!(c.setup.extra_rtts, 0.0);
    }

    #[test]
    fn step_debug_formats() {
        let s = format!("{:?}", Step::Cpu(5.0));
        assert!(s.contains("Cpu"));
        let s = format!(
            "{:?}",
            Step::CallAll {
                calls: vec![],
                cont: 3
            }
        );
        assert!(s.contains("cont=3"));
    }
}
