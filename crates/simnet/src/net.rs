//! The simulation world: request lifecycle and plan execution.
//!
//! A request walks through these phases:
//!
//! ```text
//! client ──SYN flow──▶ accept pool ──(granted)──▶ handshake ──req flow──▶
//!        ◀─refused(RST)─┘ (rejected)                                    │
//!                                                           worker pool │
//!                                                                ▼
//!                                      Plan steps: Cpu / Latency / Lock /
//!                                      Effect / CallAll / Reply
//!                                                                │
//! client ◀──────────── response flow ◀───────────────────────────┘
//! ```
//!
//! Two modelling decisions reproduce the saturation behaviour the paper
//! reports for all three monitoring systems:
//!
//! 1. **Connection attempts are traffic.**  Every SYN exchange is a small
//!    flow through the same links as the payload, so a retry storm from
//!    hundreds of blocked users consumes server-side bandwidth — the paper's
//!    "the network on the server side can no longer handle the traffic from
//!    the queries".
//! 2. **Accept pools are bounded.**  Each service accepts at most
//!    `conn_capacity` concurrent connections with a `backlog`-deep listen
//!    queue; overflow attempts are refused and clients back off
//!    exponentially, which caps the number of concurrent queries *presented*
//!    to a server and makes measured response times of completed queries
//!    stay bounded while throughput plateaus.

use crate::client::{Client, ClientCx, ClientKey, ReqOutcome, ReqResult};
use crate::flow::FlowNet;
use crate::service::{
    CallOutcome, LockKey, Payload, Service, ServiceConfig, ServiceSlot, Step, SubCall, SvcAction,
    SvcCx, SvcKey,
};
use crate::stats::StatsHub;
use crate::topology::{LinkId, NodeId, Topology};
use gtrace::{Ev, Obs, Outcome, Phase};
use simcore::slab::{Slab, SlabKey};
use simcore::{Acquire, Engine, EventHandle, FifoTokens, SimDuration, SimTime};
use std::collections::VecDeque;

/// The engine type used throughout the workspace.
pub type Eng = Engine<Net>;

/// Key identifying an in-flight request.
pub type ReqKey = SlabKey;

/// What a client wants to send.
pub struct RequestSpec {
    pub from: NodeId,
    pub to: SvcKey,
    pub payload: Payload,
    pub req_bytes: u64,
}

/// Who is waiting for this request's outcome.
enum Origin {
    Client {
        key: ClientKey,
        tag: u64,
    },
    Parent {
        req: ReqKey,
        index: u32,
    },
    /// Fire-and-forget one-way message.
    None,
}

/// Where the request is parked (for resumption routing and sanity checks).
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Waiting {
    SynFlow,
    ConnPool,
    Handshake,
    ReqFlow,
    WorkerPool,
    Cpu,
    Latency,
    Lock,
    Children,
    RespFlow,
}

struct PendingCalls {
    cont: u64,
    outcomes: Vec<CallOutcome>,
    remaining: u32,
}

struct RequestState {
    origin: Origin,
    from: NodeId,
    to: SvcKey,
    payload: Option<Payload>,
    req_bytes: u64,
    submitted: SimTime,
    oneway: bool,
    waiting: Waiting,
    has_conn: bool,
    has_worker: bool,
    held_locks: Vec<LockKey>,
    steps: VecDeque<Step>,
    pending: Option<PendingCalls>,
}

/// Bytes of a SYN/SYN-ACK control exchange (with kernel retransmissions a
/// connection attempt is a handful of packets).
pub const SYN_BYTES: u64 = 600;

// Flow-token kind tags (top bits of the packed token).
const FK_SYN: u64 = 1;
const FK_REQ: u64 = 2;
const FK_RESP: u64 = 3;

fn pack(kind: u64, key: SlabKey) -> u64 {
    (kind << 60) | ((key.index as u64) << 30) | (key.gen as u64 & 0x3FFF_FFFF)
}

fn unpack(token: u64) -> (u64, SlabKey) {
    (
        token >> 60,
        SlabKey {
            index: ((token >> 30) & 0x3FFF_FFFF) as u32,
            gen: (token & 0x3FFF_FFFF) as u32,
        },
    )
}

// CPU-token kinds.
const CK_REQUEST: u64 = 0;
const CK_CLIENT_WORK: u64 = 4;

fn req_ticket(key: ReqKey) -> u64 {
    pack(CK_REQUEST, key)
}

fn ticket_req(ticket: u64) -> ReqKey {
    unpack(ticket).1
}

/// Trace span id of a request: `(index << 32) | gen` stays below 2^53,
/// so it survives a round-trip through JSON numbers.
fn span_of(key: ReqKey) -> u64 {
    ((key.index as u64) << 32) | key.gen as u64
}

/// The trace phase a waiting state corresponds to.  Phases partition a
/// span's lifetime exactly: every transition emits a `SpanPhase` event,
/// and the segment between consecutive transitions (or span end) is the
/// time spent in that phase.
fn phase_of(w: Waiting) -> Phase {
    match w {
        Waiting::SynFlow => Phase::SynFlow,
        Waiting::ConnPool => Phase::ConnQueue,
        Waiting::Handshake => Phase::Handshake,
        Waiting::ReqFlow => Phase::ReqFlow,
        Waiting::WorkerPool => Phase::WorkerQueue,
        Waiting::Cpu => Phase::ServerCpu,
        Waiting::Latency => Phase::Backend,
        Waiting::Lock => Phase::DbLock,
        Waiting::Children => Phase::Children,
        Waiting::RespFlow => Phase::RespFlow,
    }
}

/// The simulation world.
pub struct Net {
    pub topo: Topology,
    flows: FlowNet,
    flow_event: EventHandle,
    pub services: Slab<ServiceSlot>,
    clients: Slab<Box<dyn Client>>,
    requests: Slab<RequestState>,
    client_work: Slab<(ClientKey, u64)>,
    locks: Slab<FifoTokens>,
    pub stats: StatsHub,
    /// Observability sink: tracer + metrics registry.  Defaults to off;
    /// harnesses install a live [`Obs`] before running when requested.
    pub obs: Obs,
}

impl Net {
    pub fn new(topo: Topology, stats: StatsHub) -> Self {
        Net {
            topo,
            flows: FlowNet::new(),
            flow_event: EventHandle::NULL,
            services: Slab::new(),
            clients: Slab::new(),
            requests: Slab::new(),
            client_work: Slab::new(),
            locks: Slab::new(),
            stats,
            obs: Obs::off(),
        }
    }

    // ------------------------------------------------------------------
    // Deployment API
    // ------------------------------------------------------------------

    /// Deploy a service on a node.
    pub fn add_service(
        &mut self,
        node: NodeId,
        config: ServiceConfig,
        svc: Box<dyn Service>,
        eng: &mut Eng,
    ) -> SvcKey {
        let conns = FifoTokens::bounded(config.conn_capacity, config.backlog);
        let workers = config.workers.map(FifoTokens::new);
        let rng = eng.rng.fork(self.services.len() as u64 + 1000);
        self.services.insert(ServiceSlot {
            node,
            config,
            stats: Default::default(),
            svc: Some(svc),
            conns,
            workers,
            rng,
            down: false,
            frozen_until: SimTime::ZERO,
            dropping_until: SimTime::ZERO,
        })
    }

    /// Register a client.
    pub fn add_client(&mut self, client: Box<dyn Client>) -> ClientKey {
        self.clients.insert(client)
    }

    /// Register a FIFO lock (e.g. a database critical section).
    pub fn add_lock(&mut self, tokens: u32) -> LockKey {
        self.locks.insert(FifoTokens::new(tokens))
    }

    /// Kick off the simulation: schedule `on_start` for every client at
    /// t = 0 (in registration order).
    pub fn start(&mut self, eng: &mut Eng) {
        for key in self.clients.keys() {
            eng.schedule_at(SimTime::ZERO, move |net: &mut Net, eng| {
                net.with_client(eng, key, |c, cx| c.on_start(cx));
            });
        }
    }

    /// Start a single client that was added after [`Net::start`] ran.
    pub fn start_client(&mut self, eng: &mut Eng, key: ClientKey) {
        eng.schedule_in(SimDuration::ZERO, move |net: &mut Net, eng| {
            net.with_client(eng, key, |c, cx| c.on_start(cx));
        });
    }

    /// Give a service an initial timer (e.g. a periodic advertise loop)
    /// before the simulation starts.
    pub fn prime_service_timer(&mut self, eng: &mut Eng, svc: SvcKey, dur: SimDuration, tag: u64) {
        eng.schedule_in(dur, move |net: &mut Net, eng| net.svc_timer(eng, svc, tag));
    }

    /// Immutable access to a deployed service (downcast by the caller).
    pub fn service(&self, key: SvcKey) -> Option<&dyn Service> {
        self.services.get(key).and_then(|s| s.svc.as_deref())
    }

    /// Mutable access to a deployed service (for test setup and deployment
    /// wiring; never call this from inside that service's own callbacks).
    pub fn service_mut(&mut self, key: SvcKey) -> Option<&mut (dyn Service + 'static)> {
        self.services
            .get_mut(key)
            .and_then(|s| s.svc.as_mut().map(|b| b.as_mut()))
    }

    /// Downcast a registered client to its concrete type (for inspecting
    /// monitors and user state after a run).
    pub fn client_as<T: 'static>(&self, key: ClientKey) -> Option<&T> {
        self.clients
            .get(key)
            .and_then(|c| c.as_any().downcast_ref())
    }

    /// Downcast a deployed service to its concrete type (for inspection
    /// after a run and deployment wiring).
    pub fn service_as<T: 'static>(&self, key: SvcKey) -> Option<&T> {
        self.service(key).and_then(|s| s.as_any().downcast_ref())
    }

    /// Mutable downcast of a deployed service.
    pub fn service_as_mut<T: 'static>(&mut self, key: SvcKey) -> Option<&mut T> {
        self.service_mut(key)
            .and_then(|s| s.as_any_mut().downcast_mut())
    }

    pub fn service_node(&self, key: SvcKey) -> NodeId {
        self.services.get(key).expect("service").node
    }

    pub fn service_stats(&self, key: SvcKey) -> &crate::service::ServiceStats {
        &self.services.get(key).expect("service").stats
    }

    /// Refused-connection count of a service (admission drops).
    pub fn service_refusals(&self, key: SvcKey) -> u64 {
        self.services
            .get(key)
            .expect("service")
            .conns
            .rejected_total
    }

    /// Number of in-flight requests (diagnostics).
    pub fn inflight(&self) -> usize {
        self.requests.len()
    }

    // ------------------------------------------------------------------
    // Observability helpers (no-ops when `obs` is off)
    // ------------------------------------------------------------------

    /// Transition a request's waiting state and emit the matching span
    /// phase event.
    #[inline]
    fn set_waiting(&mut self, now: SimTime, req: ReqKey, w: Waiting) {
        if let Some(r) = self.requests.get_mut(req) {
            r.waiting = w;
        }
        self.obs.ev_with(now, || Ev::SpanPhase {
            span: span_of(req),
            phase: phase_of(w),
        });
    }

    /// Record a queue-depth gauge sample (conn backlog, worker queue...).
    #[inline]
    fn obs_depth(&mut self, now: SimTime, kind: &str, idx: u32, depth: u32) {
        if self.obs.metrics_on() {
            self.obs
                .metrics
                .gauge(&format!("{kind}.{idx}"), now, f64::from(depth));
        }
    }

    /// Emit the current rate of every active flow (after a max-min
    /// recomputation changed the allocation).
    fn obs_flow_rates(&mut self, now: SimTime) {
        if self.obs.tracing() {
            let Net { flows, obs, .. } = self;
            flows.for_each_rate(|tok, rate| {
                obs.ev(
                    now,
                    Ev::FlowRate {
                        flow: tok,
                        bps: rate * 1e6,
                    },
                );
            });
        }
    }

    // ------------------------------------------------------------------
    // Node metrics (read by the ganglia crate)
    // ------------------------------------------------------------------

    /// Instantaneous runnable-task count on a node (what `load1` samples).
    pub fn node_runnable(&self, node: NodeId) -> usize {
        self.topo.node(node).cpu.runnable()
    }

    /// Monotonic busy core-seconds of a node's CPU.
    pub fn node_busy_core_seconds(&mut self, node: NodeId, now: SimTime) -> f64 {
        self.topo.node_mut(node).cpu.busy_core_seconds(now)
    }

    pub fn node_cores(&self, node: NodeId) -> u32 {
        self.topo.node(node).cpu.cores()
    }

    // ------------------------------------------------------------------
    // Client-facing operations
    // ------------------------------------------------------------------

    pub(crate) fn submit_from_client(
        &mut self,
        eng: &mut Eng,
        client: ClientKey,
        tag: u64,
        spec: RequestSpec,
        started: Option<SimTime>,
    ) {
        let req = self.new_request(
            Origin::Client { key: client, tag },
            spec,
            eng.now(),
            false,
            started,
        );
        self.start_syn(eng, req);
    }

    pub(crate) fn wake_client(&mut self, eng: &mut Eng, key: ClientKey, tag: u64) {
        self.with_client(eng, key, |c, cx| c.on_wake(tag, cx));
    }

    fn with_client(
        &mut self,
        eng: &mut Eng,
        key: ClientKey,
        f: impl FnOnce(&mut dyn Client, &mut ClientCx),
    ) {
        let Some(mut client) = self.clients.take(key) else {
            return;
        };
        {
            let mut cx = ClientCx {
                net: self,
                eng,
                me: key,
            };
            f(client.as_mut(), &mut cx);
        }
        self.clients.put_back(key, client);
    }

    // ------------------------------------------------------------------
    // Request lifecycle
    // ------------------------------------------------------------------

    fn new_request(
        &mut self,
        origin: Origin,
        spec: RequestSpec,
        now: SimTime,
        oneway: bool,
        // When the submitting client began working on this query
        // (burning query-tool CPU on its own node) before this first
        // connection attempt: backdates the span so its phases
        // partition the response time the user records.
        started: Option<SimTime>,
    ) -> ReqKey {
        let parent = match &origin {
            Origin::Parent { req, .. } => Some(span_of(*req)),
            _ => None,
        };
        let svc = spec.to.index;
        let key = self.requests.insert(RequestState {
            origin,
            from: spec.from,
            to: spec.to,
            payload: Some(spec.payload),
            req_bytes: spec.req_bytes,
            submitted: now,
            oneway,
            waiting: Waiting::SynFlow,
            has_conn: false,
            has_worker: false,
            held_locks: Vec::new(),
            steps: VecDeque::new(),
            pending: None,
        });
        let begin = started.filter(|&at| at < now);
        self.obs.ev_with(begin.unwrap_or(now), || Ev::SpanBegin {
            span: span_of(key),
            parent,
            svc,
            oneway,
        });
        if let Some(at) = begin {
            self.obs.ev_with(at, || Ev::SpanPhase {
                span: span_of(key),
                phase: Phase::ClientCpu,
            });
        }
        self.obs.ev_with(now, || Ev::SpanPhase {
            span: span_of(key),
            phase: Phase::SynFlow,
        });
        key
    }

    /// Phase 1: the SYN exchange, modelled as a small flow so connection
    /// attempts consume bandwidth.
    fn start_syn(&mut self, eng: &mut Eng, req: ReqKey) {
        let (from, to_node) = {
            let r = self.requests.get(req).expect("request");
            (r.from, self.service_node(r.to))
        };
        if self.requests.get(req).unwrap().oneway {
            // Datagram: straight to payload transfer.
            self.set_waiting(eng.now(), req, Waiting::ReqFlow);
            let bytes = self.requests.get(req).unwrap().req_bytes;
            self.start_flow(eng, from, to_node, bytes, pack(FK_REQ, req));
            return;
        }
        self.set_waiting(eng.now(), req, Waiting::SynFlow);
        self.start_flow(eng, from, to_node, SYN_BYTES, pack(FK_SYN, req));
    }

    /// SYN arrived at the server: try to enter the accept pool.
    fn syn_arrived(&mut self, eng: &mut Eng, req: ReqKey) {
        let Some(to) = self.requests.get(req).map(|r| r.to) else {
            return;
        };
        // Fault injection: a crashed host sends RSTs (well, its kernel is
        // gone — the client's SYN times out; we model the cheap variant),
        // and a drop burst refuses every attempt while it lasts.
        let forced_drop = {
            let slot = self.services.get(to).expect("service");
            slot.down || eng.now() < slot.dropping_until
        };
        if forced_drop {
            self.services
                .get_mut(to)
                .expect("service")
                .stats
                .conns_refused += 1;
            self.stats.incr("conn_refused");
            self.stats.incr("fault.conn_refused");
            self.obs
                .ev_with(eng.now(), || Ev::ConnDrop { svc: to.index });
            self.obs.incr("net.conn_refused", 1);
            self.fail_request(eng, req, /*refused=*/ true);
            return;
        }
        let (outcome, depth) = {
            let slot = self.services.get_mut(to).expect("service");
            let outcome = slot.conns.acquire(req_ticket(req));
            if matches!(outcome, Acquire::Rejected) {
                slot.stats.conns_refused += 1;
            }
            (outcome, slot.conns.waiting() as u32)
        };
        match outcome {
            Acquire::Granted => {
                self.requests.get_mut(req).unwrap().has_conn = true;
                self.begin_handshake(eng, req);
            }
            Acquire::Queued => {
                self.set_waiting(eng.now(), req, Waiting::ConnPool);
                self.obs.ev_with(eng.now(), || Ev::ConnQueue {
                    svc: to.index,
                    depth,
                });
                self.obs_depth(eng.now(), "conn_backlog", to.index, depth);
            }
            Acquire::Rejected => {
                self.stats.incr("conn_refused");
                self.obs
                    .ev_with(eng.now(), || Ev::ConnDrop { svc: to.index });
                self.obs.incr("net.conn_refused", 1);
                self.fail_request(eng, req, /*refused=*/ true);
            }
        }
    }

    /// Phase 2: handshake — 1 RTT for TCP plus the service's session-setup
    /// extras (GSI rounds, credential checks).
    fn begin_handshake(&mut self, eng: &mut Eng, req: ReqKey) {
        if !self.requests.contains(req) {
            return;
        }
        let (to, from) = {
            let r = self.requests.get_mut(req).expect("request");
            r.has_conn = true;
            (r.to, r.from)
        };
        self.set_waiting(eng.now(), req, Waiting::Handshake);
        let (setup, node) = {
            let slot = self.services.get(to).expect("service");
            (slot.config.setup, slot.node)
        };
        if setup.extra_rtts > 0.0 {
            // Session setup beyond plain TCP: GSI/TLS exchanges.
            self.obs
                .ev_with(eng.now(), || Ev::GsiHandshake { svc: to.index });
            self.obs.incr("gsi.handshakes", 1);
        }
        let rtt = self.topo.rtt(from, node);
        let delay = rtt.mul_f64(1.0 + setup.extra_rtts) + setup.fixed;
        eng.schedule_in(delay, move |net: &mut Net, eng| net.send_request(eng, req));
    }

    /// Phase 3: transfer the request body.
    fn send_request(&mut self, eng: &mut Eng, req: ReqKey) {
        if !self.requests.contains(req) {
            return;
        }
        let (from, to_node, bytes) = {
            let r = self.requests.get(req).expect("request");
            (r.from, self.services.get(r.to).unwrap().node, r.req_bytes)
        };
        self.set_waiting(eng.now(), req, Waiting::ReqFlow);
        self.start_flow(eng, from, to_node, bytes, pack(FK_REQ, req));
    }

    /// Phase 4: request body received — acquire a worker, then plan.
    fn request_arrived(&mut self, eng: &mut Eng, req: ReqKey) {
        let Some(to) = self.requests.get(req).map(|r| r.to) else {
            return;
        };
        if self.services.get(to).expect("service").down {
            // Fault injection: one-way datagrams to a crashed host vanish
            // (connection-oriented requests were already aborted or refused
            // at admission).
            self.fail_request(eng, req, /*refused=*/ true);
            return;
        }
        if self.requests.get(req).unwrap().oneway {
            self.services
                .get_mut(to)
                .expect("service")
                .stats
                .oneways_received += 1;
            // One-way messages bypass the worker pool (they are handled by
            // the server's event loop; their CPU demand still contends).
            self.start_plan(eng, req);
            return;
        }
        let acquired = {
            let slot = self.services.get_mut(to).expect("service");
            slot.workers
                .as_mut()
                .map(|w| (w.acquire(req_ticket(req)), w.waiting() as u32))
        };
        match acquired {
            None => self.start_plan(eng, req),
            Some((Acquire::Granted, _)) => {
                self.requests.get_mut(req).unwrap().has_worker = true;
                self.start_plan(eng, req);
            }
            Some((Acquire::Queued, depth)) => {
                self.set_waiting(eng.now(), req, Waiting::WorkerPool);
                self.obs.ev_with(eng.now(), || Ev::WorkerQueue {
                    svc: to.index,
                    depth,
                });
                self.obs_depth(eng.now(), "worker_queue", to.index, depth);
            }
            Some((Acquire::Rejected, _)) => unreachable!("worker pools are unbounded"),
        }
    }

    /// Phase 5: ask the service for its plan and start executing.
    fn start_plan(&mut self, eng: &mut Eng, req: ReqKey) {
        if !self.requests.contains(req) {
            return;
        }
        let (to, payload, oneway) = {
            let r = self.requests.get_mut(req).expect("request");
            (r.to, r.payload.take().expect("payload"), r.oneway)
        };
        let (setup_cpu, frozen_until) = {
            let slot = self.services.get_mut(to).expect("service");
            slot.stats.requests_handled += 1;
            let cpu = if oneway {
                0.0
            } else {
                slot.config.setup.server_cpu_us
            };
            (cpu, slot.frozen_until)
        };
        let plan = self.with_service(eng, to, |svc, cx| svc.handle(payload, cx));
        let r = self.requests.get_mut(req).expect("request");
        r.steps = plan.steps.into();
        if setup_cpu > 0.0 {
            r.steps.push_front(Step::Cpu(setup_cpu));
        }
        // Fault injection: a frozen process makes no progress until it
        // thaws; the whole plan stalls behind the remaining pause.
        let now = eng.now();
        if frozen_until > now {
            r.steps
                .push_front(Step::Latency(frozen_until.saturating_since(now)));
        }
        self.advance_steps(eng, req);
    }

    /// Execute plan steps until the request blocks or finishes.
    fn advance_steps(&mut self, eng: &mut Eng, req: ReqKey) {
        if !self.requests.contains(req) {
            // The request was aborted (fault injection) while an event that
            // would resume it was in flight.
            return;
        }
        loop {
            let Some(step) = self.requests.get_mut(req).and_then(|r| r.steps.pop_front()) else {
                // Plan exhausted without Reply: end of a one-way (or a
                // service that chose not to respond — treated as done).
                self.cleanup_finished(eng, req, None);
                return;
            };
            match step {
                Step::Cpu(us) => {
                    let node = self.service_node(self.requests.get(req).unwrap().to);
                    self.set_waiting(eng.now(), req, Waiting::Cpu);
                    let now = eng.now();
                    if self.obs.tracing() {
                        self.obs.ev(
                            now,
                            Ev::CpuGrant {
                                node: node.0,
                                span: span_of(req),
                            },
                        );
                    }
                    let cpu = &mut self.topo.node_mut(node).cpu;
                    let _ = cpu.advance(now); // normally empty; tick event handles completions
                    cpu.submit(now, us, req_ticket(req));
                    self.resched_cpu(eng, node);
                    return;
                }
                Step::Latency(d) => {
                    self.set_waiting(eng.now(), req, Waiting::Latency);
                    eng.schedule_in(d, move |net: &mut Net, eng| {
                        if net.requests.contains(req) {
                            net.set_waiting(eng.now(), req, Waiting::Cpu);
                        }
                        net.advance_steps(eng, req);
                    });
                    return;
                }
                Step::Lock(l) => {
                    match self
                        .locks
                        .get_mut(l)
                        .expect("lock")
                        .acquire(req_ticket(req))
                    {
                        Acquire::Granted => {
                            self.requests.get_mut(req).unwrap().held_locks.push(l);
                            continue;
                        }
                        Acquire::Queued => {
                            self.set_waiting(eng.now(), req, Waiting::Lock);
                            let depth = self.locks.get(l).unwrap().waiting() as u32;
                            self.obs.ev_with(eng.now(), || Ev::LockQueue {
                                lock: l.index,
                                depth,
                            });
                            self.obs_depth(eng.now(), "lock_queue", l.index, depth);
                            // Remember which lock we are waiting for by
                            // pushing the Lock step back in front: on grant
                            // we mark it held directly.
                            return;
                        }
                        Acquire::Rejected => unreachable!("locks are unbounded"),
                    }
                }
                Step::Unlock(l) => {
                    let r = self.requests.get_mut(req).expect("request");
                    if let Some(pos) = r.held_locks.iter().position(|&h| h == l) {
                        r.held_locks.swap_remove(pos);
                    } else {
                        debug_assert!(false, "unlock of a lock not held");
                    }
                    self.release_lock(eng, l);
                    continue;
                }
                Step::Effect { code, arg } => {
                    let to = self.requests.get(req).unwrap().to;
                    let now = eng.now();
                    if let Some(slot) = self.services.get_mut(to) {
                        if let Some(svc) = slot.svc.as_mut() {
                            svc.effect(code, arg, now);
                        }
                    }
                    continue;
                }
                Step::Send { to, payload, bytes } => {
                    let from = self.service_node(self.requests.get(req).unwrap().to);
                    let oneway = self.new_request(
                        Origin::None,
                        RequestSpec {
                            from,
                            to,
                            payload,
                            req_bytes: bytes,
                        },
                        eng.now(),
                        true,
                        None,
                    );
                    self.start_syn(eng, oneway);
                    continue;
                }
                Step::CallAll { calls, cont } => {
                    debug_assert!(
                        self.requests.get(req).unwrap().steps.is_empty(),
                        "CallAll must be the final step"
                    );
                    self.set_waiting(eng.now(), req, Waiting::Children);
                    if calls.is_empty() {
                        // Degenerate fan-out: resume on a zero-delay event to
                        // preserve "no synchronous callback" discipline.
                        self.requests.get_mut(req).unwrap().pending = Some(PendingCalls {
                            cont,
                            outcomes: Vec::new(),
                            remaining: 0,
                        });
                        eng.schedule_in(SimDuration::ZERO, move |net: &mut Net, eng| {
                            net.resume_parent(eng, req)
                        });
                        return;
                    }
                    let n = calls.len() as u32;
                    self.requests.get_mut(req).unwrap().pending = Some(PendingCalls {
                        cont,
                        outcomes: Vec::with_capacity(n as usize),
                        remaining: n,
                    });
                    let from = self.service_node(self.requests.get(req).unwrap().to);
                    for (i, call) in calls.into_iter().enumerate() {
                        let SubCall {
                            to,
                            payload,
                            req_bytes,
                        } = call;
                        let child = self.new_request(
                            Origin::Parent {
                                req,
                                index: i as u32,
                            },
                            RequestSpec {
                                from,
                                to,
                                payload,
                                req_bytes,
                            },
                            eng.now(),
                            false,
                            None,
                        );
                        self.start_syn(eng, child);
                    }
                    return;
                }
                Step::Fail => {
                    debug_assert!(
                        self.requests.get(req).unwrap().steps.is_empty(),
                        "Fail must be the final step"
                    );
                    // Release locks before failing.
                    let locks = std::mem::take(&mut self.requests.get_mut(req).unwrap().held_locks);
                    for l in locks {
                        self.release_lock(eng, l);
                    }
                    self.fail_request(eng, req, /*refused=*/ false);
                    return;
                }
                Step::Reply { payload, bytes } => {
                    debug_assert!(
                        self.requests.get(req).unwrap().steps.is_empty(),
                        "Reply must be the final step"
                    );
                    let r = self.requests.get_mut(req).expect("request");
                    debug_assert!(
                        r.held_locks.is_empty(),
                        "reply while holding locks — add Unlock steps"
                    );
                    if r.oneway {
                        // One-ways cannot reply; drop the payload.
                        drop(payload);
                        self.cleanup_finished(eng, req, None);
                        return;
                    }
                    r.waiting = Waiting::RespFlow;
                    r.payload = Some(payload);
                    r.req_bytes = bytes; // reuse field for response size
                    let from = r.from;
                    let to = r.to;
                    // The worker is done once the response is handed to the
                    // kernel... in reality the thread blocks on the write;
                    // holding the worker during the response transfer is what
                    // makes saturated networks back up into the thread pool.
                    let to_node = self.service_node(to);
                    let slot = self.services.get_mut(to).unwrap();
                    slot.stats.replies_sent += 1;
                    self.obs.ev_with(eng.now(), || Ev::SpanPhase {
                        span: span_of(req),
                        phase: Phase::RespFlow,
                    });
                    self.start_flow(eng, to_node, from, bytes, pack(FK_RESP, req));
                    return;
                }
            }
        }
    }

    /// Run a service callback with the take/put-back discipline.
    fn with_service<T>(
        &mut self,
        eng: &mut Eng,
        key: SvcKey,
        f: impl FnOnce(&mut dyn Service, &mut SvcCx) -> T,
    ) -> T {
        let slot = self.services.get_mut(key).expect("service");
        let mut svc = slot.svc.take().expect("service reentrancy");
        let mut rng = slot.rng.clone();
        let mut actions = Vec::new();
        let out = {
            let mut cx = SvcCx {
                now: eng.now(),
                me: key,
                rng: &mut rng,
                obs: &mut self.obs,
                actions: &mut actions,
            };
            f(svc.as_mut(), &mut cx)
        };
        let slot = self.services.get_mut(key).expect("service");
        slot.rng = rng;
        slot.svc = Some(svc);
        self.apply_actions(eng, key, actions);
        out
    }

    fn apply_actions(&mut self, eng: &mut Eng, svc: SvcKey, actions: Vec<SvcAction>) {
        for a in actions {
            match a {
                SvcAction::Timer { dur, tag } => {
                    eng.schedule_in(dur, move |net: &mut Net, eng| net.svc_timer(eng, svc, tag));
                }
                SvcAction::OneWay { to, payload, bytes } => {
                    let from = self.service_node(svc);
                    let req = self.new_request(
                        Origin::None,
                        RequestSpec {
                            from,
                            to,
                            payload,
                            req_bytes: bytes,
                        },
                        eng.now(),
                        true,
                        None,
                    );
                    self.start_syn(eng, req);
                }
            }
        }
    }

    fn svc_timer(&mut self, eng: &mut Eng, svc: SvcKey, tag: u64) {
        let Some(slot) = self.services.get(svc) else {
            return;
        };
        // Fault injection: a crashed process loses its timer chains (the
        // fault driver re-primes them on restart), and a frozen one fires
        // them only after the thaw.
        if slot.down {
            return;
        }
        if slot.frozen_until > eng.now() {
            let due = slot.frozen_until;
            eng.schedule_at(due, move |net: &mut Net, eng| net.svc_timer(eng, svc, tag));
            return;
        }
        self.with_service(eng, svc, |s, cx| s.on_timer(tag, cx));
    }

    /// A sub-call finished (or failed); if all siblings are done, resume the
    /// parent service.
    fn child_done(
        &mut self,
        eng: &mut Eng,
        parent: ReqKey,
        index: u32,
        response: Option<(Payload, u64)>,
    ) {
        let Some(r) = self.requests.get_mut(parent) else {
            return;
        };
        let Some(p) = r.pending.as_mut() else {
            debug_assert!(false, "child completion without pending calls");
            return;
        };
        p.outcomes.push(CallOutcome { index, response });
        p.remaining -= 1;
        if p.remaining == 0 {
            self.resume_parent(eng, parent);
        }
    }

    fn resume_parent(&mut self, eng: &mut Eng, parent: ReqKey) {
        let Some(r) = self.requests.get_mut(parent) else {
            return;
        };
        let PendingCalls {
            cont, mut outcomes, ..
        } = r.pending.take().expect("pending");
        outcomes.sort_by_key(|o| o.index);
        let to = r.to;
        let plan = self.with_service(eng, to, |svc, cx| svc.resume(cont, outcomes, cx));
        let r = self.requests.get_mut(parent).expect("request");
        r.steps = plan.steps.into();
        self.advance_steps(eng, parent);
    }

    /// Response transfer finished: release server-side resources and
    /// deliver to the requester after the path's propagation latency.
    fn response_sent(&mut self, eng: &mut Eng, req: ReqKey) {
        let (to, from) = {
            let r = self.requests.get(req).expect("request");
            (r.to, r.from)
        };
        self.release_server_side(eng, req);
        let latency = self.topo.one_way_latency(self.service_node(to), from);
        eng.schedule_in(latency, move |net: &mut Net, eng| {
            net.deliver_response(eng, req)
        });
    }

    fn deliver_response(&mut self, eng: &mut Eng, req: ReqKey) {
        let Some(state) = self.requests.remove(req) else {
            return;
        };
        self.obs.ev_with(eng.now(), || Ev::SpanEnd {
            span: span_of(req),
            outcome: Outcome::Ok,
        });
        let payload = state.payload.expect("response payload");
        let bytes = state.req_bytes;
        match state.origin {
            Origin::Client { key, tag } => {
                if self.obs.metrics_on() {
                    let rt = eng.now().saturating_since(state.submitted).as_micros() as f64;
                    self.obs.observe("net.rt_us", rt);
                }
                let outcome = ReqOutcome {
                    tag,
                    result: ReqResult::Ok(payload, bytes),
                    submitted: state.submitted,
                    completed: eng.now(),
                };
                self.with_client(eng, key, |c, cx| c.on_outcome(outcome, cx));
            }
            Origin::Parent { req: parent, index } => {
                self.child_done(eng, parent, index, Some((payload, bytes)));
            }
            Origin::None => {}
        }
    }

    /// Refusal / failure path: notify the origin after the return latency.
    fn fail_request(&mut self, eng: &mut Eng, req: ReqKey, refused: bool) {
        let Some((to, from)) = self.requests.get(req).map(|r| (r.to, r.from)) else {
            return;
        };
        self.release_server_side(eng, req);
        let latency = self.topo.one_way_latency(self.service_node(to), from);
        eng.schedule_in(latency, move |net: &mut Net, eng| {
            let Some(state) = net.requests.remove(req) else {
                return;
            };
            net.obs.ev_with(eng.now(), || Ev::SpanEnd {
                span: span_of(req),
                outcome: if refused {
                    Outcome::Refused
                } else {
                    Outcome::Failed
                },
            });
            match state.origin {
                Origin::Client { key, tag } => {
                    let outcome = ReqOutcome {
                        tag,
                        result: if refused {
                            ReqResult::Refused
                        } else {
                            ReqResult::Failed
                        },
                        submitted: state.submitted,
                        completed: eng.now(),
                    };
                    net.with_client(eng, key, |c, cx| c.on_outcome(outcome, cx));
                }
                Origin::Parent { req: parent, index } => {
                    net.child_done(eng, parent, index, None);
                }
                Origin::None => {}
            }
        });
    }

    /// Release conn/worker/locks held by a finishing request.  Tolerates
    /// already-removed requests (fault-aborted) as a no-op: their resources
    /// were released when they were aborted.
    fn release_server_side(&mut self, eng: &mut Eng, req: ReqKey) {
        let Some(r) = self.requests.get_mut(req) else {
            return;
        };
        let (to, has_conn, has_worker, locks) = (
            r.to,
            std::mem::take(&mut r.has_conn),
            std::mem::take(&mut r.has_worker),
            std::mem::take(&mut r.held_locks),
        );
        for l in locks {
            self.release_lock(eng, l);
        }
        if has_worker {
            self.grant_next_worker(eng, to);
        }
        if has_conn {
            self.grant_next_conn(eng, to);
        }
    }

    /// Pass a released worker token to the next live waiter (skipping
    /// waiters that were aborted while queued) or back to the pool.
    fn grant_next_worker(&mut self, eng: &mut Eng, to: SvcKey) {
        loop {
            let next = match self.services.get_mut(to).and_then(|s| s.workers.as_mut()) {
                Some(w) => w.release(),
                None => return,
            };
            let Some(ticket) = next else { return };
            let granted = ticket_req(ticket);
            if !self.requests.contains(granted) {
                // Dead waiter: release again so the token moves on.
                continue;
            }
            self.requests.get_mut(granted).unwrap().has_worker = true;
            let depth = self
                .services
                .get(to)
                .and_then(|s| s.workers.as_ref())
                .map_or(0, |w| w.waiting() as u32);
            self.obs.ev_with(eng.now(), || Ev::WorkerQueue {
                svc: to.index,
                depth,
            });
            self.obs_depth(eng.now(), "worker_queue", to.index, depth);
            eng.schedule_in(SimDuration::ZERO, move |net: &mut Net, eng| {
                net.start_plan(eng, granted)
            });
            return;
        }
    }

    /// Pass a released connection token to the next live waiter (skipping
    /// waiters that were aborted while queued) or back to the pool.
    fn grant_next_conn(&mut self, eng: &mut Eng, to: SvcKey) {
        loop {
            let next = match self.services.get_mut(to) {
                Some(s) => s.conns.release(),
                None => return,
            };
            let Some(ticket) = next else { return };
            let granted = ticket_req(ticket);
            if !self.requests.contains(granted) {
                continue;
            }
            // Mark ownership at grant time so an abort between the grant and
            // the handshake event releases the token instead of leaking it.
            self.requests.get_mut(granted).unwrap().has_conn = true;
            let depth = self
                .services
                .get(to)
                .map_or(0, |s| s.conns.waiting() as u32);
            self.obs.ev_with(eng.now(), || Ev::ConnQueue {
                svc: to.index,
                depth,
            });
            self.obs_depth(eng.now(), "conn_backlog", to.index, depth);
            eng.schedule_in(SimDuration::ZERO, move |net: &mut Net, eng| {
                net.begin_handshake(eng, granted);
            });
            return;
        }
    }

    fn cleanup_finished(&mut self, eng: &mut Eng, req: ReqKey, _payload: Option<Payload>) {
        self.release_server_side(eng, req);
        let state = self.requests.remove(req);
        if let Some(state) = state {
            let clean = matches!(state.origin, Origin::None);
            self.obs.ev_with(eng.now(), || Ev::SpanEnd {
                span: span_of(req),
                outcome: if clean { Outcome::Ok } else { Outcome::Failed },
            });
            // A request that ends without a reply only makes sense for
            // one-ways; report a failure otherwise so callers aren't left
            // hanging.
            match state.origin {
                Origin::None => {}
                Origin::Client { key, tag } => {
                    let outcome = ReqOutcome {
                        tag,
                        result: ReqResult::Failed,
                        submitted: state.submitted,
                        completed: eng.now(),
                    };
                    self.with_client(eng, key, |c, cx| c.on_outcome(outcome, cx));
                }
                Origin::Parent { req: parent, index } => {
                    self.child_done(eng, parent, index, None);
                }
            }
        }
    }

    fn release_lock(&mut self, eng: &mut Eng, l: LockKey) {
        loop {
            let Some(next) = self.locks.get_mut(l).and_then(|lk| lk.release()) else {
                return;
            };
            let granted = ticket_req(next);
            let Some(r) = self.requests.get_mut(granted) else {
                // The waiter was aborted while queued: grant to the next one.
                continue;
            };
            r.held_locks.push(l);
            r.waiting = Waiting::Cpu;
            self.obs.ev_with(eng.now(), || Ev::SpanPhase {
                span: span_of(granted),
                phase: Phase::ServerCpu,
            });
            if self.obs.on() {
                let depth = self.locks.get(l).map_or(0, |lk| lk.waiting()) as u32;
                self.obs.ev_with(eng.now(), || Ev::LockQueue {
                    lock: l.index,
                    depth,
                });
                self.obs_depth(eng.now(), "lock_queue", l.index, depth);
            }
            eng.schedule_in(SimDuration::ZERO, move |net: &mut Net, eng| {
                net.advance_steps(eng, granted)
            });
            return;
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (driven by gfaults::FaultDriver)
    // ------------------------------------------------------------------

    /// Is the service's host process currently crashed?
    pub fn service_down(&self, svc: SvcKey) -> bool {
        self.services.get(svc).is_some_and(|s| s.down)
    }

    /// Crash a service's host process: every in-flight request targeting it
    /// aborts (its requester sees a failure, as with a TCP reset), new
    /// connections are refused, and its timer chains go silent until
    /// [`Net::restart_service`].  The service object itself keeps its state —
    /// restart models a process reboot on the same host, and protocol-level
    /// recovery (re-registration, heartbeats) runs through each service's
    /// own soft-state machinery.
    pub fn crash_service(&mut self, eng: &mut Eng, svc: SvcKey) {
        {
            let Some(slot) = self.services.get_mut(svc) else {
                return;
            };
            if slot.down {
                return;
            }
            slot.down = true;
        }
        self.stats.incr("fault.crashes");
        self.obs
            .ev_with(eng.now(), || Ev::FaultCrash { svc: svc.index });
        self.obs.incr("fault.crashes", 1);
        let victims: Vec<ReqKey> = self
            .requests
            .keys()
            .into_iter()
            .filter(|&k| self.requests.get(k).is_some_and(|r| r.to == svc))
            .collect();
        for k in victims {
            self.abort_request(eng, k);
        }
    }

    /// Bring a crashed service back up with empty accept/worker pools
    /// (whatever the dead process held is gone).  The fault driver re-primes
    /// the service's timers so periodic soft-state traffic resumes.
    pub fn restart_service(&mut self, eng: &mut Eng, svc: SvcKey) {
        let Some(slot) = self.services.get_mut(svc) else {
            return;
        };
        if !slot.down {
            return;
        }
        slot.down = false;
        slot.conns = FifoTokens::bounded(slot.config.conn_capacity, slot.config.backlog);
        slot.workers = slot.config.workers.map(FifoTokens::new);
        self.stats.incr("fault.restarts");
        self.obs
            .ev_with(eng.now(), || Ev::FaultRestart { svc: svc.index });
        self.obs.incr("fault.restarts", 1);
    }

    /// Freeze a service until `until` (a GC-pause-style stall): plans started
    /// during the freeze stall for its remainder, timers defer to the thaw.
    pub fn freeze_service(&mut self, eng: &mut Eng, svc: SvcKey, until: SimTime) {
        let Some(slot) = self.services.get_mut(svc) else {
            return;
        };
        slot.frozen_until = slot.frozen_until.max(until);
        self.stats.incr("fault.freezes");
        self.obs
            .ev_with(eng.now(), || Ev::FaultFreeze { svc: svc.index });
        self.obs.incr("fault.freezes", 1);
    }

    /// Force-drop every new connection attempt at a service until `until`
    /// (a SYN-drop burst: the process stays up, clients see refusals).
    pub fn drop_conns_until(&mut self, eng: &mut Eng, svc: SvcKey, until: SimTime) {
        let Some(slot) = self.services.get_mut(svc) else {
            return;
        };
        slot.dropping_until = slot.dropping_until.max(until);
        self.stats.incr("fault.conn_bursts");
        self.obs
            .ev_with(eng.now(), || Ev::FaultDropBurst { svc: svc.index });
        self.obs.incr("fault.conn_bursts", 1);
    }

    /// Change a link's capacity mid-run and re-share the active flows.
    /// A partition degrades a link to ~1 bit/s (in-flight transfers stall
    /// until the heal restores the original capacity); capacities must stay
    /// positive.  Emits a partition instant when capacity shrinks, a heal
    /// instant when it grows.
    pub fn set_link_capacity(&mut self, eng: &mut Eng, link: LinkId, bps: f64) {
        assert!(bps > 0.0, "link capacity must stay positive");
        let now = eng.now();
        let done = self.flows.advance(&self.topo, now);
        let old = self.topo.link(link).capacity_bps;
        self.topo.link_mut(link).capacity_bps = bps;
        self.flows.capacity_changed(&self.topo);
        if bps < old {
            self.stats.incr("fault.partitions");
            self.obs
                .ev_with(now, || Ev::FaultPartition { link: link.0 });
            self.obs.incr("fault.partitions", 1);
        } else {
            self.stats.incr("fault.heals");
            self.obs.ev_with(now, || Ev::FaultHeal { link: link.0 });
            self.obs.incr("fault.heals", 1);
        }
        self.obs_flow_rates(now);
        self.resched_flows(eng);
        for t in done {
            self.dispatch_flow_token(eng, t);
        }
    }

    /// Abort one in-flight request *now*: pull it out of any wait queue,
    /// release what it holds, remove it, and notify its origin of failure
    /// synchronously.  Unlike [`Net::fail_request`] there is no delayed
    /// removal — fault aborts must leave no half-dead request behind.
    fn abort_request(&mut self, eng: &mut Eng, req: ReqKey) {
        let Some(r) = self.requests.get(req) else {
            return;
        };
        let (to, waiting) = (r.to, r.waiting);
        let ticket = req_ticket(req);
        match waiting {
            Waiting::ConnPool => {
                if let Some(s) = self.services.get_mut(to) {
                    s.conns.remove_waiter(ticket);
                }
            }
            Waiting::WorkerPool => {
                if let Some(w) = self.services.get_mut(to).and_then(|s| s.workers.as_mut()) {
                    w.remove_waiter(ticket);
                }
            }
            Waiting::Lock => {
                // The queued-on lock id is not stored on the request; scan
                // the (small) lock table.
                for k in self.locks.keys() {
                    if let Some(lk) = self.locks.get_mut(k) {
                        lk.remove_waiter(ticket);
                    }
                }
            }
            _ => {}
        }
        self.release_server_side(eng, req);
        let Some(state) = self.requests.remove(req) else {
            return;
        };
        self.obs.ev_with(eng.now(), || Ev::SpanEnd {
            span: span_of(req),
            outcome: Outcome::Failed,
        });
        match state.origin {
            Origin::Client { key, tag } => {
                let outcome = ReqOutcome {
                    tag,
                    result: ReqResult::Failed,
                    submitted: state.submitted,
                    completed: eng.now(),
                };
                self.with_client(eng, key, |c, cx| c.on_outcome(outcome, cx));
            }
            Origin::Parent { req: parent, index } => {
                self.child_done(eng, parent, index, None);
            }
            Origin::None => {}
        }
    }

    // ------------------------------------------------------------------
    // Resource event plumbing
    // ------------------------------------------------------------------

    fn start_flow(&mut self, eng: &mut Eng, from: NodeId, to: NodeId, bytes: u64, token: u64) {
        let now = eng.now();
        // Collect any flows that finish exactly now so their completions are
        // not lost when we advance the clock inside FlowNet.
        let done = self.flows.advance(&self.topo, now);
        let path = self.topo.route(from, to).to_vec();
        self.flows.start(&self.topo, now, path, bytes, token);
        self.obs
            .ev_with(now, || Ev::FlowStart { flow: token, bytes });
        self.obs_flow_rates(now);
        self.resched_flows(eng);
        for t in done {
            self.dispatch_flow_token(eng, t);
        }
    }

    fn flow_tick(&mut self, eng: &mut Eng) {
        let now = eng.now();
        let done = self.flows.advance(&self.topo, now);
        self.obs_flow_rates(now);
        self.resched_flows(eng);
        for t in done {
            self.dispatch_flow_token(eng, t);
        }
    }

    fn dispatch_flow_token(&mut self, eng: &mut Eng, token: u64) {
        self.obs.ev_with(eng.now(), || Ev::FlowEnd { flow: token });
        let (kind, key) = unpack(token);
        if !self.requests.contains(key) {
            return;
        }
        match kind {
            FK_SYN => {
                // SYN flow done; add propagation latency then admission.
                let (to, from) = {
                    let r = self.requests.get(key).unwrap();
                    (r.to, r.from)
                };
                let latency = self.topo.one_way_latency(from, self.service_node(to));
                eng.schedule_in(latency, move |net: &mut Net, eng| {
                    if net.requests.contains(key) {
                        net.syn_arrived(eng, key);
                    }
                });
            }
            FK_REQ => {
                let (to, from) = {
                    let r = self.requests.get(key).unwrap();
                    (r.to, r.from)
                };
                let latency = self.topo.one_way_latency(from, self.service_node(to));
                eng.schedule_in(latency, move |net: &mut Net, eng| {
                    if net.requests.contains(key) {
                        net.request_arrived(eng, key);
                    }
                });
            }
            FK_RESP => self.response_sent(eng, key),
            _ => debug_assert!(false, "unknown flow token kind {kind}"),
        }
    }

    fn resched_flows(&mut self, eng: &mut Eng) {
        eng.cancel(self.flow_event);
        self.flow_event = match self.flows.next_completion(eng.now()) {
            Some(t) => eng.schedule_at(t, |net: &mut Net, eng| net.flow_tick(eng)),
            None => EventHandle::NULL,
        };
    }

    fn cpu_tick(&mut self, eng: &mut Eng, node: NodeId) {
        let now = eng.now();
        let done = self.topo.node_mut(node).cpu.advance(now);
        self.resched_cpu(eng, node);
        for token in done {
            let (kind, key) = unpack(token);
            match kind {
                CK_REQUEST => {
                    if self.requests.contains(key) {
                        self.obs.ev_with(now, || Ev::CpuDone {
                            node: node.0,
                            span: span_of(key),
                        });
                        self.advance_steps(eng, key);
                    }
                }
                CK_CLIENT_WORK => {
                    if let Some((client, tag)) = self.client_work.remove(key) {
                        self.with_client(eng, client, |c, cx| c.on_wake(tag, cx));
                    }
                }
                _ => debug_assert!(false, "unknown CPU token kind {kind}"),
            }
        }
    }

    /// Submit client-side CPU work (the user script forking its query
    /// tool); the client's `on_wake(tag)` fires when it completes.
    pub(crate) fn client_cpu(
        &mut self,
        eng: &mut Eng,
        client: ClientKey,
        node: NodeId,
        work_us: f64,
        tag: u64,
    ) {
        let key = self.client_work.insert((client, tag));
        let now = eng.now();
        let cpu = &mut self.topo.node_mut(node).cpu;
        let _ = cpu.advance(now);
        cpu.submit(now, work_us, pack(CK_CLIENT_WORK, key));
        self.resched_cpu(eng, node);
    }

    fn resched_cpu(&mut self, eng: &mut Eng, node: NodeId) {
        let handle = self.topo.node(node).cpu_event;
        eng.cancel(handle);
        let next = self.topo.node(node).cpu.next_completion(eng.now());
        self.topo.node_mut(node).cpu_event = match next {
            Some(t) => eng.schedule_at(t, move |net: &mut Net, eng| net.cpu_tick(eng, node)),
            None => EventHandle::NULL,
        };
        if self.obs.on() {
            let now = eng.now();
            let runnable = self.topo.node(node).cpu.runnable() as u32;
            self.obs.ev(
                now,
                Ev::CpuResched {
                    node: node.0,
                    runnable,
                },
            );
            if self.obs.metrics_on() {
                let name = format!("cpu.{}.runnable", self.topo.node(node).name);
                self.obs.metrics.gauge(&name, now, f64::from(runnable));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Plan, SetupCost};

    /// Echo service: fixed CPU cost, replies with the request string.
    struct Echo {
        cpu_us: f64,
    }

    impl Service for Echo {
        fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
            let msg = *req.downcast::<String>().expect("string payload");
            Plan::new()
                .cpu(self.cpu_us)
                .reply(format!("echo:{msg}"), 256)
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    /// One-shot client: sends one request at start, records the outcome.
    struct OneShot {
        from: NodeId,
        to: SvcKey,
        got: std::rc::Rc<std::cell::RefCell<Vec<(String, f64)>>>,
    }

    impl Client for OneShot {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(String::from("hi")),
                    req_bytes: 512,
                },
                1,
            );
        }
        fn on_outcome(&mut self, outcome: ReqOutcome, _cx: &mut ClientCx) {
            if let ReqResult::Ok(p, _) = outcome.result {
                let s = *p.downcast::<String>().unwrap();
                let rt = (outcome.completed - outcome.submitted).as_secs_f64();
                self.got.borrow_mut().push((s, rt));
            } else {
                self.got.borrow_mut().push((String::from("FAIL"), 0.0));
            }
        }
    }

    fn two_node_net() -> (Net, Eng, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node("client", 1, 1.0);
        let b = topo.add_node("server", 2, 1.0);
        topo.connect(a, b, 100e6, SimDuration::from_micros(500));
        let stats = StatsHub::new(SimTime::ZERO, SimTime::from_secs(1000));
        let net = Net::new(topo, stats);
        let eng: Eng = Engine::new(7);
        (net, eng, a, b)
    }

    #[test]
    fn request_response_round_trip() {
        let (mut net, mut eng, a, b) = two_node_net();
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 1000.0 }),
            &mut eng,
        );
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "echo:hi");
        // RT must include at least 2 RTTs (~2ms) + 1ms CPU.
        assert!(got[0].1 > 0.003, "rt {}", got[0].1);
        assert!(got[0].1 < 0.1, "rt {}", got[0].1);
        assert_eq!(net.inflight(), 0);
        assert_eq!(net.service_stats(svc).replies_sent, 1);
    }

    #[test]
    fn setup_cost_adds_fixed_latency() {
        let (mut net, mut eng, a, b) = two_node_net();
        let cfg = ServiceConfig {
            setup: SetupCost {
                extra_rtts: 2.0,
                fixed: SimDuration::from_secs(2),
                server_cpu_us: 100.0,
            },
            ..ServiceConfig::default()
        };
        let svc = net.add_service(b, cfg, Box::new(Echo { cpu_us: 100.0 }), &mut eng);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert!(
            got[0].1 > 2.0,
            "rt {} should include GSI-like fixed cost",
            got[0].1
        );
        assert!(got[0].1 < 2.2);
    }

    /// Client that fires `n` requests at once (tests conn admission).
    struct Burst {
        from: NodeId,
        to: SvcKey,
        n: u32,
        ok: std::rc::Rc<std::cell::RefCell<(u32, u32)>>, // (ok, refused)
    }

    impl Client for Burst {
        fn on_start(&mut self, cx: &mut ClientCx) {
            for i in 0..self.n {
                cx.submit(
                    RequestSpec {
                        from: self.from,
                        to: self.to,
                        payload: Box::new(String::from("x")),
                        req_bytes: 200,
                    },
                    i as u64,
                );
            }
        }
        fn on_outcome(&mut self, outcome: ReqOutcome, _cx: &mut ClientCx) {
            let mut s = self.ok.borrow_mut();
            match outcome.result {
                ReqResult::Ok(..) => s.0 += 1,
                _ => s.1 += 1,
            }
        }
    }

    #[test]
    fn admission_refuses_overflow() {
        let (mut net, mut eng, a, b) = two_node_net();
        let cfg = ServiceConfig {
            conn_capacity: 2,
            backlog: 3,
            workers: Some(2),
            setup: SetupCost::plain(),
        };
        let svc = net.add_service(b, cfg, Box::new(Echo { cpu_us: 50_000.0 }), &mut eng);
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 20,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(60));
        let (ok_n, refused_n) = *ok.borrow();
        assert_eq!(ok_n + refused_n, 20);
        // Only capacity+backlog = 5 can be in the building at once; the
        // burst arrives together so most are refused.
        assert_eq!(ok_n, 5, "refused={refused_n}");
        assert_eq!(net.service_refusals(svc), 15);
        assert_eq!(net.inflight(), 0);
    }

    #[test]
    fn worker_pool_serialises_cpu() {
        // 1 worker, 10ms CPU each, 4 requests => last response ~40ms+.
        let (mut net, mut eng, a, b) = two_node_net();
        let cfg = ServiceConfig {
            conn_capacity: 100,
            backlog: 100,
            workers: Some(1),
            setup: SetupCost::plain(),
        };
        let svc = net.add_service(b, cfg, Box::new(Echo { cpu_us: 10_000.0 }), &mut eng);
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 4,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        assert_eq!(ok.borrow().0, 4);
        // With a single worker the four 10ms jobs cannot overlap: total
        // service span >= 40ms. We can't observe per-request times here,
        // but the engine's clock advanced past the serial sum when the last
        // response arrived; verify indirectly via stats (replies == 4).
        assert_eq!(net.service_stats(svc).replies_sent, 4);
    }

    /// A service that fans out to two backends and aggregates.
    struct FanOut {
        backends: Vec<SvcKey>,
    }

    impl Service for FanOut {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            let calls = self
                .backends
                .iter()
                .map(|&b| SubCall {
                    to: b,
                    payload: Box::new(String::from("sub")),
                    req_bytes: 128,
                })
                .collect();
            Plan::new().cpu(100.0).call_all(calls, 42)
        }
        fn resume(&mut self, cont: u64, outcomes: Vec<CallOutcome>, _cx: &mut SvcCx) -> Plan {
            assert_eq!(cont, 42);
            let n_ok = outcomes.iter().filter(|o| o.response.is_some()).count();
            Plan::new().cpu(100.0).reply(format!("agg:{n_ok}"), 512)
        }
        fn name(&self) -> &str {
            "fanout"
        }
    }

    #[test]
    fn fanout_aggregation() {
        let (mut net, mut eng, a, b) = two_node_net();
        let e1 = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 500.0 }),
            &mut eng,
        );
        let e2 = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 500.0 }),
            &mut eng,
        );
        let agg = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(FanOut {
                backends: vec![e1, e2],
            }),
            &mut eng,
        );
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: agg,
            got: got.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "agg:2");
        assert_eq!(net.inflight(), 0);
    }

    /// Service with a periodic timer that sends one-ways to a sink.
    struct Beacon {
        sink: SvcKey,
        period: SimDuration,
        sent: u32,
    }

    impl Service for Beacon {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::reply_empty()
        }
        fn on_timer(&mut self, _tag: u64, cx: &mut SvcCx) {
            self.sent += 1;
            cx.send_oneway(self.sink, String::from("ad"), 1024);
            if self.sent < 5 {
                cx.set_timer(self.period, 0);
            }
        }
        fn name(&self) -> &str {
            "beacon"
        }
    }

    /// Sink counting one-way messages.
    struct Sink {
        seen: u32,
    }

    impl Service for Sink {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            self.seen += 1;
            Plan::new().cpu(50.0).done()
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    #[test]
    fn timers_and_oneway_messages() {
        let (mut net, mut eng, _a, b) = two_node_net();
        let sink = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Sink { seen: 0 }),
            &mut eng,
        );
        let beacon = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Beacon {
                sink,
                period: SimDuration::from_secs(1),
                sent: 0,
            }),
            &mut eng,
        );
        net.prime_service_timer(&mut eng, beacon, SimDuration::from_secs(1), 0);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(30));
        let sink_svc: &Sink = net.service_as(sink).expect("downcast");
        assert_eq!(sink_svc.seen, 5);
        assert_eq!(net.service_stats(sink).oneways_received, 5);
        assert_eq!(net.inflight(), 0);
    }

    /// Service exercising locks: two lock-guarded CPU sections.
    struct Locked {
        lock: LockKey,
    }

    impl Service for Locked {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new()
                .lock(self.lock)
                .cpu(10_000.0)
                .unlock(self.lock)
                .reply((), 64)
        }
        fn name(&self) -> &str {
            "locked"
        }
    }

    #[test]
    fn lock_serialises_critical_sections() {
        let (mut net, mut eng, a, b) = two_node_net();
        let lock = net.add_lock(1);
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Locked { lock }),
            &mut eng,
        );
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 3,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        assert_eq!(ok.borrow().0, 3);
        assert_eq!(net.inflight(), 0);
    }

    /// Service that fails every request after consuming some CPU.
    struct Failing;

    impl Service for Failing {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new().cpu(5_000.0).fail()
        }
        fn name(&self) -> &str {
            "failing"
        }
    }

    #[test]
    fn fail_step_reports_failure_and_releases_resources() {
        let (mut net, mut eng, a, b) = two_node_net();
        let cfg = ServiceConfig {
            conn_capacity: 2,
            backlog: 0,
            workers: Some(1),
            setup: SetupCost::plain(),
        };
        let svc = net.add_service(b, cfg, Box::new(Failing), &mut eng);
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 2,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        // Both fit the pool, both fail (Burst counts non-Ok in .1).
        assert_eq!(*ok.borrow(), (0, 2));
        // Conn and worker tokens were released: nothing leaks.
        assert_eq!(net.inflight(), 0);
        // The pool is empty again: a fresh burst is admitted, not refused.
        let ok2 = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        let late = net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 2,
            ok: ok2.clone(),
        }));
        net.start_client(&mut eng, late);
        eng.run_until(&mut net, SimTime::from_secs(20));
        assert_eq!(*ok2.borrow(), (0, 2));
        assert_eq!(net.service_refusals(svc), 0);
    }

    /// Service whose plan sends a one-way notification mid-request.
    struct Notifier {
        sink: SvcKey,
    }

    impl Service for Notifier {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new()
                .cpu(500.0)
                .send(self.sink, String::from("note"), 256)
                .reply((), 64)
        }
        fn name(&self) -> &str {
            "notifier"
        }
    }

    #[test]
    fn send_step_delivers_oneway_while_replying() {
        let (mut net, mut eng, a, b) = two_node_net();
        let sink = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Sink { seen: 0 }),
            &mut eng,
        );
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Notifier { sink }),
            &mut eng,
        );
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 4,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        assert_eq!(ok.borrow().0, 4);
        let sink_ref: &Sink = net.service_as(sink).unwrap();
        assert_eq!(sink_ref.seen, 4);
        assert_eq!(net.inflight(), 0);
    }

    #[test]
    fn client_cpu_contends_on_the_client_host() {
        // Two client-side jobs on a 1-core host take twice one job's time.
        struct CpuUser {
            node: NodeId,
            jobs: u32,
            finished_at: std::rc::Rc<std::cell::RefCell<Vec<f64>>>,
        }
        impl Client for CpuUser {
            fn on_start(&mut self, cx: &mut ClientCx) {
                for _ in 0..self.jobs {
                    cx.spend_cpu(self.node, 1_000_000.0, 7); // 1 CPU-second
                }
            }
            fn on_wake(&mut self, tag: u64, cx: &mut ClientCx) {
                assert_eq!(tag, 7);
                self.finished_at.borrow_mut().push(cx.now().as_secs_f64());
            }
        }
        let (mut net, mut eng, a, _b) = two_node_net();
        let finished = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(CpuUser {
            node: a,
            jobs: 2,
            finished_at: finished.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        let f = finished.borrow();
        assert_eq!(f.len(), 2);
        // Processor sharing: both 1s jobs finish together at ~2s.
        assert!((f[0] - 2.0).abs() < 0.01, "{f:?}");
        assert!((f[1] - 2.0).abs() < 0.01, "{f:?}");
    }

    /// Service that fails while holding the database lock: Fail must
    /// release held locks or the service wedges forever.
    struct FailingLocked {
        lock: LockKey,
    }

    impl Service for FailingLocked {
        fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
            Plan::new().lock(self.lock).cpu(2_000.0).fail()
        }
        fn name(&self) -> &str {
            "failing_locked"
        }
    }

    #[test]
    fn fail_step_releases_held_locks() {
        let (mut net, mut eng, a, b) = two_node_net();
        let lock = net.add_lock(1);
        let bad = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(FailingLocked { lock }),
            &mut eng,
        );
        let good = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Locked { lock }),
            &mut eng,
        );
        let ok_bad = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: bad,
            n: 3,
            ok: ok_bad.clone(),
        }));
        let ok_good = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: good,
            n: 2,
            ok: ok_good.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(30));
        // All lock-then-fail requests failed...
        assert_eq!(*ok_bad.borrow(), (0, 3));
        // ...yet the lock kept circulating: the well-behaved service
        // finished its lock-guarded sections.
        assert_eq!(*ok_good.borrow(), (2, 0));
        assert_eq!(net.inflight(), 0);
    }

    /// Client that retries exactly once, after a delay, when refused.
    struct RetryOnce {
        from: NodeId,
        to: SvcKey,
        log: std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
        retried: bool,
    }

    impl RetryOnce {
        fn spec(&self) -> RequestSpec {
            RequestSpec {
                from: self.from,
                to: self.to,
                payload: Box::new(String::from("r")),
                req_bytes: 256,
            }
        }
    }

    impl Client for RetryOnce {
        fn on_start(&mut self, cx: &mut ClientCx) {
            let spec = self.spec();
            cx.submit(spec, 0);
        }
        fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
            match outcome.result {
                ReqResult::Ok(..) => self.log.borrow_mut().push("ok"),
                ReqResult::Refused => {
                    self.log.borrow_mut().push("refused");
                    if !self.retried {
                        self.retried = true;
                        cx.wake_in(SimDuration::from_secs(30), 9);
                    }
                }
                ReqResult::Failed => self.log.borrow_mut().push("failed"),
            }
        }
        fn on_wake(&mut self, tag: u64, cx: &mut ClientCx) {
            assert_eq!(tag, 9);
            let spec = self.spec();
            cx.submit(spec, 1);
        }
    }

    #[test]
    fn backlog_refusal_then_retry_succeeds() {
        // Saturate a tiny pool with slow requests, have one client retry
        // after the backlog drains: the retry must be admitted and succeed.
        let (mut net, mut eng, a, b) = two_node_net();
        let cfg = ServiceConfig {
            conn_capacity: 1,
            backlog: 1,
            workers: Some(1),
            setup: SetupCost::plain(),
        };
        let svc = net.add_service(
            b,
            cfg,
            Box::new(Echo {
                cpu_us: 1_000_000.0,
            }),
            &mut eng,
        );
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 2, // fills capacity + backlog
            ok: ok.clone(),
        }));
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(RetryOnce {
            from: a,
            to: svc,
            log: log.clone(),
            retried: false,
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(120));
        assert_eq!(*ok.borrow(), (2, 0));
        assert_eq!(*log.borrow(), vec!["refused", "ok"]);
        assert_eq!(net.inflight(), 0);
    }

    #[test]
    fn failed_subcall_reaches_resume_as_none() {
        // A fan-out whose second backend fails: resume() must see one Some
        // and one None outcome, not hang or panic.
        let (mut net, mut eng, a, b) = two_node_net();
        let good = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 500.0 }),
            &mut eng,
        );
        let bad = net.add_service(b, ServiceConfig::default(), Box::new(Failing), &mut eng);
        let agg = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(FanOut {
                backends: vec![good, bad],
            }),
            &mut eng,
        );
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: agg,
            got: got.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(10));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "agg:1");
        assert_eq!(net.inflight(), 0);
    }

    // ------------------------------------------------------------------
    // Fault-injection hooks
    // ------------------------------------------------------------------

    #[test]
    fn crash_aborts_inflight_refuses_new_and_restart_recovers() {
        let (mut net, mut eng, a, b) = two_node_net();
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 50_000.0 }),
            &mut eng,
        );
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got.clone(),
        }));
        net.start(&mut eng);
        // Let the request reach the server CPU, then pull the plug.
        eng.run_until(&mut net, SimTime::from_secs_f64(0.01));
        net.crash_service(&mut eng, svc);
        assert!(net.service_down(svc));
        eng.run_until(&mut net, SimTime::from_secs(5));
        assert_eq!(got.borrow().as_slice(), &[(String::from("FAIL"), 0.0)]);
        assert_eq!(net.inflight(), 0, "abort must leave no zombie requests");
        // New connection attempts are refused while down.
        let got2 = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let late = net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got2.clone(),
        }));
        net.start_client(&mut eng, late);
        eng.run_until(&mut net, SimTime::from_secs(10));
        assert_eq!(got2.borrow().as_slice(), &[(String::from("FAIL"), 0.0)]);
        // Restart: the service answers again.
        net.restart_service(&mut eng, svc);
        assert!(!net.service_down(svc));
        let got3 = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let third = net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got3.clone(),
        }));
        net.start_client(&mut eng, third);
        eng.run_until(&mut net, SimTime::from_secs(20));
        assert_eq!(got3.borrow().len(), 1);
        assert_eq!(got3.borrow()[0].0, "echo:hi");
        assert_eq!(net.inflight(), 0);
    }

    #[test]
    fn freeze_stalls_plans_until_thaw() {
        let (mut net, mut eng, a, b) = two_node_net();
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 1_000.0 }),
            &mut eng,
        );
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got.clone(),
        }));
        net.freeze_service(&mut eng, svc, SimTime::from_secs(6));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(30));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "echo:hi");
        // The plan started shortly after t=0 and stalled to the thaw at 6s.
        assert!(got[0].1 > 5.5, "rt {} should include the stall", got[0].1);
        assert!(got[0].1 < 7.0, "rt {}", got[0].1);
    }

    #[test]
    fn drop_burst_refuses_then_recovers() {
        let (mut net, mut eng, a, b) = two_node_net();
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 1_000.0 }),
            &mut eng,
        );
        net.drop_conns_until(&mut eng, svc, SimTime::from_secs(5));
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 3,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(4));
        assert_eq!(*ok.borrow(), (0, 3), "burst arrives inside the drop window");
        assert_eq!(net.service_stats(svc).conns_refused, 3);
        // After the window, connections are admitted normally.
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let late = net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got.clone(),
        }));
        eng.run_until(&mut net, SimTime::from_secs(6));
        net.start_client(&mut eng, late);
        eng.run_until(&mut net, SimTime::from_secs(20));
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].0, "echo:hi");
    }

    #[test]
    fn partition_stalls_flows_until_heal() {
        let (mut net, mut eng, a, b) = two_node_net();
        let svc = net.add_service(
            b,
            ServiceConfig::default(),
            Box::new(Echo { cpu_us: 1_000.0 }),
            &mut eng,
        );
        let up = net.topo.find_link("client->server").expect("link");
        let down = net.topo.find_link("server->client").expect("link");
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(OneShot {
            from: a,
            to: svc,
            got: got.clone(),
        }));
        net.start(&mut eng);
        net.set_link_capacity(&mut eng, up, 1.0);
        net.set_link_capacity(&mut eng, down, 1.0);
        eng.run_until(&mut net, SimTime::from_secs(5));
        assert!(got.borrow().is_empty(), "SYN cannot cross a partition");
        assert!(net.inflight() > 0);
        // Heal: the stalled transfer resumes at full rate.
        net.set_link_capacity(&mut eng, up, 100e6);
        net.set_link_capacity(&mut eng, down, 100e6);
        eng.run_until(&mut net, SimTime::from_secs(10));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "echo:hi");
        // The response only arrived after the heal at t=5s.
        assert!(got[0].1 > 5.0, "rt {}", got[0].1);
        assert_eq!(net.inflight(), 0);
    }

    #[test]
    fn crash_with_queued_waiters_leaks_nothing() {
        // Saturate a 1-slot pool so requests queue in the backlog and the
        // worker pool, crash, restart, and verify fresh requests flow.
        let (mut net, mut eng, a, b) = two_node_net();
        let cfg = ServiceConfig {
            conn_capacity: 2,
            backlog: 4,
            workers: Some(1),
            setup: SetupCost::plain(),
        };
        let svc = net.add_service(b, cfg, Box::new(Echo { cpu_us: 500_000.0 }), &mut eng);
        let ok = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 6,
            ok: ok.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs_f64(0.05));
        net.crash_service(&mut eng, svc);
        eng.run_until(&mut net, SimTime::from_secs(2));
        let (ok_n, not_ok) = *ok.borrow();
        assert_eq!(ok_n, 0);
        assert_eq!(not_ok, 6, "every queued/in-flight request fails on crash");
        assert_eq!(net.inflight(), 0);
        net.restart_service(&mut eng, svc);
        let ok2 = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        let late = net.add_client(Box::new(Burst {
            from: a,
            to: svc,
            n: 2,
            ok: ok2.clone(),
        }));
        net.start_client(&mut eng, late);
        eng.run_until(&mut net, SimTime::from_secs(10));
        assert_eq!(*ok2.borrow(), (2, 0), "restarted pools admit new work");
        assert_eq!(net.inflight(), 0);
    }
}
