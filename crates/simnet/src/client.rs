//! Simulated clients (users, monitors, load generators).
//!
//! A [`Client`] is a trait object owned by the world that reacts to three
//! stimuli: simulation start, timer wake-ups it scheduled itself, and the
//! outcomes of requests it submitted.  The workload crate implements the
//! paper's closed-loop users on top of this (query; wait for the response;
//! sleep one second; repeat).

use crate::net::{Eng, Net, RequestSpec};
use crate::service::Payload;
use simcore::slab::SlabKey;
use simcore::{SimDuration, SimTime};

/// Key identifying a client instance.
pub type ClientKey = SlabKey;

/// Result of a submitted request.
pub enum ReqResult {
    /// Response payload and its size on the wire.
    Ok(Payload, u64),
    /// The connection was refused (accept queue full) — retry later.
    Refused,
    /// The request failed mid-flight (service or sub-service error).
    Failed,
}

impl ReqResult {
    pub fn is_ok(&self) -> bool {
        matches!(self, ReqResult::Ok(..))
    }
}

/// Delivered to [`Client::on_outcome`] when a request finishes.
pub struct ReqOutcome {
    /// The tag the client attached at submission.
    pub tag: u64,
    pub result: ReqResult,
    /// When this particular attempt was submitted.
    pub submitted: SimTime,
    /// Now (delivery time).
    pub completed: SimTime,
}

/// A simulated client process.
pub trait Client: crate::service::AsAny + 'static {
    /// Called once when the simulation starts.
    fn on_start(&mut self, cx: &mut ClientCx);

    /// A timer set via [`ClientCx::wake_in`] fired.
    fn on_wake(&mut self, tag: u64, cx: &mut ClientCx) {
        let _ = (tag, cx);
    }

    /// A request submitted via [`ClientCx::submit`] finished.
    fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
        let _ = (outcome, cx);
    }
}

/// Context passed to client callbacks: scoped access to the world and the
/// engine.  The client's own box has been taken out of the world for the
/// duration of the callback, so `net` is freely usable.
pub struct ClientCx<'a> {
    pub net: &'a mut Net,
    pub eng: &'a mut Eng,
    pub me: ClientKey,
}

impl ClientCx<'_> {
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// Submit a request; the outcome arrives via `on_outcome` with `tag`.
    pub fn submit(&mut self, spec: RequestSpec, tag: u64) {
        let me = self.me;
        self.net.submit_from_client(self.eng, me, tag, spec, None);
    }

    /// Like [`submit`](Self::submit), for a query the client began
    /// working on at `started` (e.g. burning query-tool CPU via
    /// [`spend_cpu`](Self::spend_cpu) first).  Purely observational:
    /// the traced span is backdated to `started` with a `client_cpu`
    /// phase so its phases partition the client-perceived response
    /// time; the simulation itself is unaffected.
    pub fn submit_started(&mut self, spec: RequestSpec, tag: u64, started: SimTime) {
        let me = self.me;
        self.net
            .submit_from_client(self.eng, me, tag, spec, Some(started));
    }

    /// Schedule `on_wake(tag)` after `dur`.
    pub fn wake_in(&mut self, dur: SimDuration, tag: u64) {
        let me = self.me;
        self.eng
            .schedule_in(dur, move |net: &mut Net, eng| net.wake_client(eng, me, tag));
    }

    /// Consume CPU on `node` (the user's own machine — e.g. forking the
    /// query tool); `on_wake(tag)` fires when the work completes.  The
    /// work contends with every other user process on that machine.
    pub fn spend_cpu(&mut self, node: crate::topology::NodeId, work_us: f64, tag: u64) {
        let me = self.me;
        self.net.client_cpu(self.eng, me, node, work_us, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_result_classification() {
        assert!(ReqResult::Ok(Box::new(()), 0).is_ok());
        assert!(!ReqResult::Refused.is_ok());
        assert!(!ReqResult::Failed.is_ok());
    }
}
