//! Named measurement sinks shared by the whole simulation.
//!
//! Experiments register a measurement window once; simulated users then
//! record response times and completions into named series.  The hub also
//! carries free-form counters (drops, retries, failures) that the analysis
//! layer reads after the run.

use simcore::stats::{Histogram, MeanAccum, WindowedMean};
use simcore::SimTime;
use std::collections::HashMap;

/// Central statistics hub stored in the world.
pub struct StatsHub {
    window_start: SimTime,
    window_end: SimTime,
    response_times: HashMap<String, WindowedMean>,
    histograms: HashMap<String, Histogram>,
    counters: HashMap<String, u64>,
    gauges: HashMap<String, MeanAccum>,
}

impl StatsHub {
    /// Create a hub whose measurement window is `[start, end)`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        StatsHub {
            window_start: start,
            window_end: end,
            response_times: HashMap::new(),
            histograms: HashMap::new(),
            counters: HashMap::new(),
            gauges: HashMap::new(),
        }
    }

    pub fn window(&self) -> (SimTime, SimTime) {
        (self.window_start, self.window_end)
    }

    /// Record a completed operation for `series` finishing at `at` with
    /// response time `rt_secs`.  Only completions inside the window count —
    /// the same discipline as the paper's 10-minute measurement spans.
    pub fn record_completion(&mut self, series: &str, at: SimTime, rt_secs: f64) {
        let (ws, we) = (self.window_start, self.window_end);
        self.response_times
            .entry(series.to_owned())
            .or_insert_with(|| WindowedMean::new(ws, we))
            .record(at, rt_secs);
        if at >= ws && at < we {
            self.histograms
                .entry(series.to_owned())
                .or_insert_with(|| Histogram::new(1e-4))
                .record(rt_secs);
        }
    }

    /// Throughput of `series` in completions per second over the window.
    pub fn throughput(&self, series: &str) -> f64 {
        self.response_times
            .get(series)
            .map_or(0.0, WindowedMean::rate_per_sec)
    }

    /// Mean response time of `series` (seconds) over the window.
    pub fn mean_response_time(&self, series: &str) -> f64 {
        self.response_times
            .get(series)
            .map_or(0.0, |w| w.stats().mean())
    }

    /// Number of completions of `series` inside the window.
    pub fn completions(&self, series: &str) -> u64 {
        self.response_times
            .get(series)
            .map_or(0, |w| w.stats().count())
    }

    /// Approximate response-time quantile of `series`.
    pub fn response_quantile(&self, series: &str, q: f64) -> f64 {
        self.histograms.get(series).map_or(0.0, |h| h.quantile(q))
    }

    /// Increment a counter (unconditionally — counters are not windowed;
    /// pass `at` to restrict to the window).
    pub fn incr(&mut self, counter: &str) {
        *self.counters.entry(counter.to_owned()).or_insert(0) += 1;
    }

    /// Increment a counter only if `at` is inside the measurement window.
    pub fn incr_windowed(&mut self, counter: &str, at: SimTime) {
        if at >= self.window_start && at < self.window_end {
            self.incr(counter);
        }
    }

    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// Record an arbitrary gauge sample (e.g. cache size at query time).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    pub fn gauge_mean(&self, name: &str) -> f64 {
        self.gauges.get(name).map_or(0.0, MeanAccum::mean)
    }

    /// All series names recorded so far (sorted, for reports).
    pub fn series_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.response_times.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn windowed_throughput_and_rt() {
        let mut h = StatsHub::new(s(10), s(20));
        h.record_completion("u", s(5), 1.0); // before window: ignored
        h.record_completion("u", s(12), 2.0);
        h.record_completion("u", s(15), 4.0);
        h.record_completion("u", s(25), 8.0); // after window: ignored
        assert_eq!(h.completions("u"), 2);
        assert!((h.throughput("u") - 0.2).abs() < 1e-12);
        assert!((h.mean_response_time("u") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_and_gauges() {
        let mut h = StatsHub::new(s(0), s(10));
        h.incr("drops");
        h.incr("drops");
        h.incr_windowed("drops_w", s(5));
        h.incr_windowed("drops_w", s(50));
        assert_eq!(h.counter("drops"), 2);
        assert_eq!(h.counter("drops_w"), 1);
        assert_eq!(h.counter("missing"), 0);
        h.gauge("cache", 10.0);
        h.gauge("cache", 20.0);
        assert_eq!(h.gauge_mean("cache"), 15.0);
    }

    #[test]
    fn quantiles_present_after_recording() {
        let mut h = StatsHub::new(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(100));
        for i in 1..=100 {
            h.record_completion("q", s(1), i as f64 / 10.0);
        }
        assert!(h.response_quantile("q", 0.5) > 0.0);
        assert!(h.response_quantile("q", 0.9) >= h.response_quantile("q", 0.5));
    }

    #[test]
    fn unknown_series_is_zero() {
        let h = StatsHub::new(s(0), s(1));
        assert_eq!(h.throughput("nope"), 0.0);
        assert_eq!(h.mean_response_time("nope"), 0.0);
    }
}
