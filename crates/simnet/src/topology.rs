//! Hosts, links and routes.
//!
//! A [`Topology`] is a set of named nodes (hosts), directed links with a
//! fixed capacity (bits/second) and one-way latency, and an explicit route
//! table mapping ordered node pairs to link paths.  Routing is static —
//! the testbeds under study are a handful of hosts on a LAN plus a WAN
//! uplink, so explicit routes are simpler and more faithful than a routing
//! algorithm.

use simcore::{PsCpu, SimDuration};
use std::collections::HashMap;

/// Index of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a directed link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// A simulated host.
pub struct Node {
    pub name: String,
    pub cpu: PsCpu,
    /// Handle of the pending CPU-completion event (managed by `Net`).
    pub(crate) cpu_event: simcore::EventHandle,
}

impl Node {
    pub fn new(name: impl Into<String>, cores: u32, speed: f64) -> Self {
        Node {
            name: name.into(),
            cpu: PsCpu::new(cores, speed),
            cpu_event: simcore::EventHandle::NULL,
        }
    }
}

/// A directed link.
#[derive(Debug, Clone)]
pub struct Link {
    pub name: String,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

/// The static network topology.
#[derive(Default)]
pub struct Topology {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    routes: HashMap<(NodeId, NodeId), Vec<LinkId>>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host with `cores` CPUs at relative `speed` (1.0 = reference).
    pub fn add_node(&mut self, name: impl Into<String>, cores: u32, speed: f64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(name, cores, speed));
        id
    }

    /// Add a directed link.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        capacity_bps: f64,
        latency: SimDuration,
    ) -> LinkId {
        assert!(capacity_bps > 0.0);
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            name: name.into(),
            capacity_bps,
            latency,
        });
        id
    }

    /// Register the (directed) route from `src` to `dst`.
    pub fn set_route(&mut self, src: NodeId, dst: NodeId, path: Vec<LinkId>) {
        self.routes.insert((src, dst), path);
    }

    /// Look up the route from `src` to `dst`.  Same-node routes default to
    /// the empty path.  Panics on a missing inter-node route: topologies
    /// must be wired completely by the deployment code.
    pub fn route(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        if src == dst {
            return &[];
        }
        self.routes
            .get(&(src, dst))
            .unwrap_or_else(|| {
                panic!(
                    "no route from {} to {}",
                    self.nodes[src.0 as usize].name, self.nodes[dst.0 as usize].name
                )
            })
            .as_slice()
    }

    /// One-way latency along the route from `src` to `dst` (a small
    /// loopback latency for same-node paths).
    pub fn one_way_latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        if src == dst {
            return SimDuration::from_micros(30); // loopback
        }
        self.route(src, dst)
            .iter()
            .map(|l| self.links[l.0 as usize].latency)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Round-trip latency between two nodes.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way_latency(a, b) + self.one_way_latency(b, a)
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Mutable access to a link (fault injection changes capacities
    /// mid-run; go through `Net::set_link_capacity` so flow rates are
    /// re-shared).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Find a directed link by name (for tests and fault targeting).
    pub fn find_link(&self, name: &str) -> Option<LinkId> {
        self.links
            .iter()
            .position(|l| l.name == name)
            .map(|i| LinkId(i as u32))
    }

    /// Find a node by name (for tests and reporting).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Convenience: create a bidirectional link pair `a<->b` and the routes
    /// between the two nodes.  Returns `(a_to_b, b_to_a)`.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        latency: SimDuration,
    ) -> (LinkId, LinkId) {
        let name_a = self.node(a).name.clone();
        let name_b = self.node(b).name.clone();
        let ab = self.add_link(format!("{name_a}->{name_b}"), capacity_bps, latency);
        let ba = self.add_link(format!("{name_b}->{name_a}"), capacity_bps, latency);
        self.set_route(a, b, vec![ab]);
        self.set_route(b, a, vec![ba]);
        (ab, ba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_star_topology() {
        let mut t = Topology::new();
        let hub = t.add_node("switch", 1, 1.0);
        let a = t.add_node("a", 2, 1.0);
        let b = t.add_node("b", 2, 1.0);
        let (a_up, a_down) = t.connect(a, hub, 100e6, SimDuration::from_micros(50));
        let (b_up, b_down) = t.connect(b, hub, 100e6, SimDuration::from_micros(50));
        t.set_route(a, b, vec![a_up, b_down]);
        t.set_route(b, a, vec![b_up, a_down]);
        assert_eq!(t.route(a, b), &[a_up, b_down]);
        assert_eq!(t.one_way_latency(a, b).as_micros(), 100);
        assert_eq!(t.rtt(a, b).as_micros(), 200);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 4);
    }

    #[test]
    fn same_node_route_is_loopback() {
        let mut t = Topology::new();
        let a = t.add_node("a", 1, 1.0);
        assert!(t.route(a, a).is_empty());
        assert!(t.one_way_latency(a, a).as_micros() > 0);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a", 1, 1.0);
        let b = t.add_node("b", 1, 1.0);
        let _ = t.route(a, b);
    }

    #[test]
    fn find_node_by_name() {
        let mut t = Topology::new();
        let a = t.add_node("lucky0", 2, 1.0);
        assert_eq!(t.find_node("lucky0"), Some(a));
        assert_eq!(t.find_node("lucky9"), None);
    }
}
