//! Property-based tests of the network substrate's invariants.

use proptest::prelude::*;
use simcore::{SimDuration, SimRng, SimTime};
use simnet::flow::FlowNet;
use simnet::{LinkId, Topology};

/// A random small topology plus random flow paths over it.
fn arb_case() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>, Vec<u64>)> {
    let caps = proptest::collection::vec(1.0e6..100.0e6f64, 2..6);
    caps.prop_flat_map(|caps| {
        let n_links = caps.len();
        let path = proptest::collection::vec(0..n_links, 1..=n_links.min(3));
        let flows = proptest::collection::vec(path, 1..20);
        let sizes = proptest::collection::vec(1_000u64..1_000_000, 1..20);
        (Just(caps), flows, sizes)
    })
}

fn build_topo(caps: &[f64]) -> (Topology, Vec<LinkId>) {
    let mut t = Topology::new();
    let _ = t.add_node("x", 1, 1.0);
    let links = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| t.add_link(format!("l{i}"), c, SimDuration::from_micros(10)))
        .collect();
    (t, links)
}

proptest! {
    /// Max-min fairness invariants: no link is oversubscribed and every
    /// flow makes progress.
    #[test]
    fn fair_share_conserves_capacity((caps, paths, sizes) in arb_case()) {
        let (topo, links) = build_topo(&caps);
        let mut fnet = FlowNet::new();
        let mut keys = Vec::new();
        let n = paths.len().min(sizes.len());
        for i in 0..n {
            let mut path: Vec<LinkId> = paths[i].iter().map(|&j| links[j]).collect();
            path.dedup();
            keys.push((fnet.start(&topo, SimTime(0), path.clone(), sizes[i], i as u64), path));
        }
        // Per-link load never exceeds capacity (with small f64 slack).
        let mut load = vec![0.0f64; caps.len()];
        for (k, path) in &keys {
            let rate = fnet.rate_of(*k).expect("flow exists");
            prop_assert!(rate > 0.0, "every flow gets positive rate");
            for l in path {
                load[l.0 as usize] += rate;
            }
        }
        for (i, &cap) in caps.iter().enumerate() {
            let cap_per_us = cap / 1e6;
            prop_assert!(
                load[i] <= cap_per_us * (1.0 + 1e-9),
                "link {i} oversubscribed: {} > {}",
                load[i],
                cap_per_us
            );
        }
    }

    /// All flows eventually complete, and simulated completion times are
    /// consistent with work-conservation: total bits delivered divided by
    /// elapsed time never exceeds the sum of capacities.
    #[test]
    fn flows_drain_completely((caps, paths, sizes) in arb_case()) {
        let (topo, links) = build_topo(&caps);
        let mut fnet = FlowNet::new();
        let n = paths.len().min(sizes.len());
        let mut total_bits = 0.0;
        for i in 0..n {
            let mut path: Vec<LinkId> = paths[i].iter().map(|&j| links[j]).collect();
            path.dedup();
            total_bits += (sizes[i].max(1) * 8) as f64;
            fnet.start(&topo, SimTime(0), path, sizes[i], i as u64);
        }
        let mut now = SimTime(0);
        let mut completed = 0usize;
        let mut guard = 0;
        while fnet.active() > 0 {
            let next = fnet.next_completion(now).expect("progress while active");
            prop_assert!(next > now, "time must advance");
            now = next;
            completed += fnet.advance(&topo, now).len();
            guard += 1;
            prop_assert!(guard < 10_000, "runaway");
        }
        prop_assert_eq!(completed, n);
        // Work conservation bound: elapsed >= total_bits / sum(caps).
        let elapsed_us = now.as_micros() as f64;
        let cap_sum_per_us: f64 = caps.iter().map(|c| c / 1e6).sum();
        prop_assert!(
            elapsed_us * cap_sum_per_us >= total_bits * (1.0 - 1e-6),
            "finished faster than physically possible"
        );
    }

    /// Fairness is scale-free in flow order: permuting start order of
    /// simultaneous flows does not change each flow's rate.
    #[test]
    fn rates_independent_of_insertion_order(
        (caps, paths, sizes) in arb_case(),
        seed in 0u64..1000,
    ) {
        let (topo, links) = build_topo(&caps);
        let n = paths.len().min(sizes.len());
        let canonical: Vec<Vec<LinkId>> = (0..n)
            .map(|i| {
                let mut p: Vec<LinkId> = paths[i].iter().map(|&j| links[j]).collect();
                p.dedup();
                p
            })
            .collect();
        let run = |order: &[usize]| -> Vec<f64> {
            let mut fnet = FlowNet::new();
            let mut keys = vec![None; n];
            for &i in order {
                keys[i] = Some(fnet.start(
                    &topo,
                    SimTime(0),
                    canonical[i].clone(),
                    sizes[i],
                    i as u64,
                ));
            }
            keys.into_iter()
                .map(|k| fnet.rate_of(k.unwrap()).unwrap())
                .collect()
        };
        let forward: Vec<usize> = (0..n).collect();
        let mut shuffled: Vec<usize> = (0..n).collect();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut shuffled);
        let a = run(&forward);
        let b = run(&shuffled);
        for i in 0..n {
            prop_assert!((a[i] - b[i]).abs() < 1e-9 * a[i].max(1.0),
                "flow {i}: {} vs {}", a[i], b[i]);
        }
    }
}
