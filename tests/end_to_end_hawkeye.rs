//! End-to-end Hawkeye integration: advertising, status/constraint
//! queries, triggers, and the simulated advertiser fleet.

use gridmon::classad::ClassAd;
use gridmon::core::deploy::{Harness, HawkeyeBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::hawkeye::{Agent, HawkeyeMsg, Manager};
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simnet::{
    Client, ClientCx, NodeId, Payload, Plan, ReqOutcome, ReqResult, RequestSpec, Service,
    ServiceConfig, SvcCx, SvcKey,
};
use std::cell::RefCell;
use std::rc::Rc;

struct Asker {
    from: NodeId,
    to: SvcKey,
    at: u64,
    build: Box<dyn Fn() -> HawkeyeMsg>,
    ads_seen: Rc<RefCell<Vec<usize>>>,
}

impl Client for Asker {
    fn on_start(&mut self, cx: &mut ClientCx) {
        cx.wake_in(SimDuration::from_secs(self.at), 0);
    }
    fn on_wake(&mut self, _t: u64, cx: &mut ClientCx) {
        let m = (self.build)();
        let bytes = m.wire_size();
        cx.submit(
            RequestSpec {
                from: self.from,
                to: self.to,
                payload: Box::new(m),
                req_bytes: bytes,
            },
            0,
        );
    }
    fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
        if let ReqResult::Ok(p, _) = o.result {
            if let Ok(r) = p.downcast::<gridmon::hawkeye::proto::AdsReply>() {
                self.ads_seen.borrow_mut().push(r.ads.len());
            }
        }
    }
}

fn pool(h: &mut Harness, agents: usize) -> (SvcKey, Vec<SvcKey>) {
    let mgr_node = h.lucky("lucky3");
    let mgr = HawkeyeBackend.manager(h, mgr_node);
    let names = ["lucky0", "lucky1", "lucky4", "lucky5", "lucky6", "lucky7"];
    let keys = names[..agents]
        .iter()
        .map(|n| {
            let node = h.lucky(n);
            HawkeyeBackend.agent(h, node, 11, mgr)
        })
        .collect();
    (mgr, keys)
}

#[test]
fn agents_populate_the_managers_resident_database() {
    let mut h = Harness::new(RunConfig::quick(301));
    let (mgr, agents) = pool(&mut h, 6);
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(70));
    let m = h.net.service_as::<Manager>(mgr).unwrap();
    assert_eq!(m.pool_size(), 6);
    // Each agent advertised at t≈0.5, 30.5, 60.5.
    for a in &agents {
        assert_eq!(h.net.service_as::<Agent>(*a).unwrap().ads_sent, 3);
    }
    assert_eq!(m.ads_received, 18);
}

#[test]
fn status_and_constraint_queries() {
    let mut h = Harness::new(RunConfig::quick(302));
    let (mgr, _) = pool(&mut h, 6);
    let status = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(Asker {
        from: uc0,
        to: mgr,
        at: 40,
        build: Box::new(|| HawkeyeMsg::Status {
            machine: Some("lucky5".into()),
        }),
        ads_seen: status.clone(),
    }));
    let matches = Rc::new(RefCell::new(Vec::new()));
    h.net.add_client(Box::new(Asker {
        from: uc0,
        to: mgr,
        at: 45,
        build: Box::new(|| HawkeyeMsg::Constraint {
            expr: "ModuleCount == 11".into(),
        }),
        ads_seen: matches.clone(),
    }));
    let none = Rc::new(RefCell::new(Vec::new()));
    h.net.add_client(Box::new(Asker {
        from: uc0,
        to: mgr,
        at: 50,
        build: Box::new(|| HawkeyeMsg::Constraint {
            expr: "Nope =?= 1".into(),
        }),
        ads_seen: none.clone(),
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(90));
    assert_eq!(*status.borrow(), vec![1]);
    assert_eq!(*matches.borrow(), vec![6]);
    assert_eq!(*none.borrow(), vec![0]);
}

/// Notification sink for trigger firings.
struct Inbox {
    fired: u64,
}

impl Service for Inbox {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        if let Ok(m) = req.downcast::<HawkeyeMsg>() {
            if matches!(*m, HawkeyeMsg::TriggerFired { .. }) {
                self.fired += 1;
            }
        }
        Plan::new().cpu(100.0).done()
    }
}

#[test]
fn triggers_fire_per_matching_advertisement() {
    let mut h = Harness::new(RunConfig::quick(303));
    let (mgr, _) = pool(&mut h, 3);
    let uc0 = h.uc[0];
    let inbox = h.net.add_service(
        uc0,
        ServiceConfig::default(),
        Box::new(Inbox { fired: 0 }),
        &mut h.eng,
    );
    let trig = ClassAd::parse("Requirements = TARGET.ModuleCount >= 11\n").unwrap();
    h.net
        .service_as_mut::<Manager>(mgr)
        .unwrap()
        .add_trigger(trig, Some(inbox));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(70));
    let m = h.net.service_as::<Manager>(mgr).unwrap();
    // 3 agents × 3 ads each, every ad matches.
    assert_eq!(m.triggers_fired, 9);
    assert_eq!(h.net.service_as::<Inbox>(inbox).unwrap().fired, 9);
}

#[test]
fn advertiser_fleet_scales_the_pool() {
    let mut h = Harness::new(RunConfig::quick(304));
    let mgr_node = h.lucky("lucky3");
    let mgr = HawkeyeBackend.manager(&mut h, mgr_node);
    let fleet_node = h.lucky("lucky4");
    HawkeyeBackend.advertiser_fleet(&mut h, fleet_node, 200, mgr);
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(65));
    let m = h.net.service_as::<Manager>(mgr).unwrap();
    assert_eq!(m.pool_size(), 200);
    // Two advertise rounds in 65 s.
    assert!(m.ads_received >= 380, "ads {}", m.ads_received);
    // A worst-case constraint scan sees all 200 ads.
    let none = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    let late = h.net.add_client(Box::new(Asker {
        from: uc0,
        to: mgr,
        at: 1,
        build: Box::new(|| HawkeyeMsg::Constraint {
            expr: "Nope =?= 1".into(),
        }),
        ads_seen: none.clone(),
    }));
    h.net.start_client(&mut h.eng, late);
    h.eng.run_until(&mut h.net, SimTime::from_secs(80));
    assert_eq!(*none.borrow(), vec![0]);
}
