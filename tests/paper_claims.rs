//! The paper's qualitative claims, checked at reduced scale.
//!
//! These tests run real experiment points (shorter windows than the
//! paper's 10 minutes) and assert the *orderings and shapes* the paper
//! reports — who wins, which direction curves move — rather than
//! absolute numbers.

use gridmon::core::experiments::{set1, set2, set3, set4};
use gridmon::core::runcfg::RunConfig;
use gridmon::simcore::SimDuration;

fn cfg() -> RunConfig {
    let mut c = RunConfig::quick(99);
    c.warmup = SimDuration::from_secs(30);
    c.window = SimDuration::from_secs(90);
    c
}

#[test]
fn caching_beats_refetching_dramatically() {
    // Section 3.3: "caching can significantly improve performance of the
    // information server".
    let users = 100;
    let cached = set1::run_point(set1::Set1Series::GrisCache, users, &cfg());
    let uncached = set1::run_point(set1::Set1Series::GrisNoCache, users, &cfg());
    assert!(
        cached.throughput > uncached.throughput * 5.0,
        "cache {} vs nocache {}",
        cached.throughput,
        uncached.throughput
    );
    assert!(
        uncached.response_time > cached.response_time * 4.0,
        "cache rt {} vs nocache rt {}",
        cached.response_time,
        uncached.response_time
    );
    // "Its throughput does not exceed 2 queries per second when the data
    // is not in cache."
    assert!(uncached.throughput < 2.5, "nocache {}", uncached.throughput);
}

#[test]
fn gris_cache_throughput_grows_with_users() {
    // Fig 5: near-linear growth for the cached GRIS.
    let a = set1::run_point(set1::Set1Series::GrisCache, 50, &cfg());
    let b = set1::run_point(set1::Set1Series::GrisCache, 150, &cfg());
    assert!(
        b.throughput > a.throughput * 2.0,
        "50 users {} vs 150 users {}",
        a.throughput,
        b.throughput
    );
    // Fig 6: response time stays in the GSI-bind band.
    assert!(
        a.response_time > 3.0 && a.response_time < 5.5,
        "{}",
        a.response_time
    );
    assert!(
        b.response_time > 3.0 && b.response_time < 5.5,
        "{}",
        b.response_time
    );
}

#[test]
fn directory_servers_outscale_the_registry() {
    // Figs 9-10: GIIS and Manager present good scalability, R-GMA less.
    let users = 150;
    let giis = set2::run_point(set2::Set2Series::Giis, users, &cfg());
    let mgr = set2::run_point(set2::Set2Series::HawkeyeManager, users, &cfg());
    let reg = set2::run_point(set2::Set2Series::RegistryLucky, users, &cfg());
    assert!(
        giis.throughput > reg.throughput * 2.0,
        "giis {} reg {}",
        giis.throughput,
        reg.throughput
    );
    assert!(
        mgr.throughput > reg.throughput * 2.0,
        "mgr {} reg {}",
        mgr.throughput,
        reg.throughput
    );
    // The Registry's response time is the worst of the three.
    assert!(reg.response_time > giis.response_time);
    assert!(reg.response_time > mgr.response_time);
}

#[test]
fn giis_host_load_roughly_twice_the_managers() {
    // Fig 12: "the load of GIIS is nearly twice as bad as Hawkeye
    // Manager when the number of users is large", blamed on the LDAP
    // backend vs the indexed resident database.
    let users = 200;
    let giis = set2::run_point(set2::Set2Series::Giis, users, &cfg());
    let mgr = set2::run_point(set2::Set2Series::HawkeyeManager, users, &cfg());
    let ratio = giis.cpu_load / mgr.cpu_load.max(1e-9);
    assert!(
        ratio > 1.5,
        "cpu ratio {ratio}: giis {} mgr {}",
        giis.cpu_load,
        mgr.cpu_load
    );
}

#[test]
fn registry_placement_barely_matters() {
    // Section 3.4: "little difference between the performances of
    // R-GMA's Registry when accessed by two different kinds of simulated
    // Consumers", because Registry contention dominates the network.
    let users = 100;
    let lucky = set2::run_point(set2::Set2Series::RegistryLucky, users, &cfg());
    let uc = set2::run_point(set2::Set2Series::RegistryUC, users, &cfg());
    let rel = (lucky.throughput - uc.throughput).abs() / lucky.throughput.max(1e-9);
    assert!(
        rel < 0.2,
        "lucky {} vs uc {}",
        lucky.throughput,
        uc.throughput
    );
}

#[test]
fn more_collectors_degrade_every_information_server() {
    // Figs 13-14: all servers degrade; the cached GRIS degrades least.
    let few = set3::run_point(set3::Set3Series::HawkeyeAgent, 11, &cfg());
    let many = set3::run_point(set3::Set3Series::HawkeyeAgent, 90, &cfg());
    assert!(many.throughput < few.throughput / 3.0);
    assert!(
        many.response_time > 10.0,
        "paper: >10 s at 90 modules; got {}",
        many.response_time
    );
    assert!(
        many.throughput < 1.0,
        "paper: <1 q/s at 90 modules; got {}",
        many.throughput
    );

    let gris_few = set3::run_point(set3::Set3Series::GrisCache, 10, &cfg());
    let gris_many = set3::run_point(set3::Set3Series::GrisCache, 90, &cfg());
    // The cached GRIS barely notices: still >= 5 q/s with ~sub-second
    // search (paper: 7 q/s, < 1 s response).
    assert!(gris_many.throughput > 5.0, "{}", gris_many.throughput);
    assert!(gris_many.throughput > gris_few.throughput * 0.8);

    let ps_many = set3::run_point(set3::Set3Series::ProducerServlet, 90, &cfg());
    assert!(ps_many.throughput < 1.0, "{}", ps_many.throughput);
    assert!(ps_many.response_time > 10.0, "{}", ps_many.response_time);
}

#[test]
fn aggregation_degrades_beyond_a_hundred_sources() {
    // Figs 17-18: "no current aggregate information server is capable of
    // aggregating information servers when there are more than 100 of
    // them".
    let small = set4::run_point(set4::Set4Series::GiisQueryAll, 10, &cfg());
    let large = set4::run_point(set4::Set4Series::GiisQueryAll, 150, &cfg());
    assert!(
        large.throughput < small.throughput / 2.0,
        "10 gris {} vs 150 gris {}",
        small.throughput,
        large.throughput
    );
    assert!(large.response_time > small.response_time * 2.0);

    // Query-part scales further than query-all at the same source count.
    let part = set4::run_point(set4::Set4Series::GiisQueryPart, 150, &cfg());
    assert!(part.throughput > large.throughput);

    // The Manager degrades too as the pool grows.
    let m_small = set4::run_point(set4::Set4Series::HawkeyeManager, 50, &cfg());
    let m_large = set4::run_point(set4::Set4Series::HawkeyeManager, 700, &cfg());
    assert!(
        m_large.throughput < m_small.throughput * 0.7,
        "50 machines {} vs 700 {}",
        m_small.throughput,
        m_large.throughput
    );
    assert!(m_large.response_time > m_small.response_time * 3.0);
}

#[test]
fn experiment_points_are_deterministic() {
    let a = set1::run_point(set1::Set1Series::HawkeyeAgent, 60, &cfg());
    let b = set1::run_point(set1::Set1Series::HawkeyeAgent, 60, &cfg());
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.refused, b.refused);
}
