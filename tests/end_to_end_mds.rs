//! End-to-end MDS integration: the full GRIS -> GIIS hierarchy on the
//! simulated Lucky testbed.

use gridmon::core::deploy::{giis_suffix, gris_suffix, Harness, MdsBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::ldap::{Filter, Scope};
use gridmon::mds::{Giis, Gris, MdsRequest, MdsSearchResult};
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simnet::{Client, ClientCx, NodeId, ReqOutcome, ReqResult, RequestSpec, SvcKey};
use std::cell::RefCell;
use std::rc::Rc;

/// Client that issues a fixed list of `(time, request builder)` queries.
struct Prober {
    from: NodeId,
    to: SvcKey,
    schedule: Vec<u64>,
    build: Box<dyn Fn(usize) -> MdsRequest>,
    results: Rc<RefCell<Vec<(usize, f64)>>>,
    sent: usize,
}

impl Client for Prober {
    fn on_start(&mut self, cx: &mut ClientCx) {
        for (i, &t) in self.schedule.iter().enumerate() {
            cx.wake_in(SimDuration::from_secs(t), i as u64);
        }
    }
    fn on_wake(&mut self, tag: u64, cx: &mut ClientCx) {
        let req = (self.build)(tag as usize);
        let bytes = req.wire_size();
        self.sent += 1;
        cx.submit(
            RequestSpec {
                from: self.from,
                to: self.to,
                payload: Box::new(req),
                req_bytes: bytes,
            },
            tag,
        );
    }
    fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
        if let ReqResult::Ok(p, _) = o.result {
            let r = p.downcast::<MdsSearchResult>().unwrap();
            let rt = (o.completed - o.submitted).as_secs_f64();
            self.results.borrow_mut().push((r.total, rt));
        } else {
            self.results.borrow_mut().push((usize::MAX, -1.0));
        }
    }
}

#[test]
fn gris_caching_makes_repeat_queries_cheap() {
    let mut h = Harness::new(RunConfig::quick(101));
    let server = h.lucky("lucky7");
    let gris = MdsBackend.gris(&mut h, server, 10, true, false);
    let results = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(Prober {
        from: uc0,
        to: gris,
        schedule: vec![1, 10, 20],
        build: Box::new(|_| MdsRequest::search_all(gris_suffix(0))),
        results: results.clone(),
        sent: 0,
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(60));
    let results = results.borrow();
    assert_eq!(results.len(), 3);
    let cold = results[0].1;
    let warm = results[1].1;
    // The cold query pays ~0.5 s of serialized provider execution on top
    // of the bind/search cost the warm queries also pay.
    assert!(cold > warm * 1.5, "cold {cold} vs warm {warm}");
    assert!(cold - warm > 0.4, "provider cost missing: {cold} vs {warm}");
    // Same data every time.
    assert_eq!(results[0].0, results[2].0);
    assert!(results[0].0 > 20);
    // Providers executed exactly once.
    assert_eq!(h.net.service_as::<Gris>(gris).unwrap().provider_runs, 10);
}

#[test]
fn giis_aggregates_five_sites_and_serves_part_queries() {
    let mut h = Harness::new(RunConfig::quick(102));
    let giis_node = h.lucky("lucky0");
    let gris_nodes: Vec<NodeId> = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]
        .iter()
        .map(|n| h.lucky(n))
        .collect();
    let (giis, grafts) = MdsBackend.giis_pool(&mut h, giis_node, &gris_nodes, 5, None);
    assert_eq!(grafts.len(), 5);

    let all = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(Prober {
        from: uc0,
        to: giis,
        schedule: vec![40],
        build: Box::new(|_| MdsRequest::search_all(giis_suffix())),
        results: all.clone(),
        sent: 0,
    }));
    let part = Rc::new(RefCell::new(Vec::new()));
    let graft = grafts[2].clone();
    h.net.add_client(Box::new(Prober {
        from: uc0,
        to: giis,
        schedule: vec![50],
        build: Box::new(move |_| MdsRequest::Search {
            base: graft.clone(),
            scope: Scope::Sub,
            filter: Filter::any(),
            attrs: None,
        }),
        results: part.clone(),
        sent: 0,
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(120));

    let all_n = all.borrow()[0].0;
    let part_n = part.borrow()[0].0;
    assert!(all_n > part_n * 4, "all {all_n} vs part {part_n}");
    assert!(part_n > 10, "one site's subtree: {part_n}");
    let g = h.net.service_as::<Giis>(giis).unwrap();
    assert_eq!(g.registered_count(), 5);
    assert_eq!(g.pulls, 5, "cache pinned: one pull per site");
}

#[test]
fn giis_filtered_search_selects_across_sites() {
    let mut h = Harness::new(RunConfig::quick(103));
    let giis_node = h.lucky("lucky0");
    let gris_nodes: Vec<NodeId> = vec![h.lucky("lucky3"), h.lucky("lucky4")];
    let (giis, _) = MdsBackend.giis_pool(&mut h, giis_node, &gris_nodes, 4, None);
    let results = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(Prober {
        from: uc0,
        to: giis,
        schedule: vec![40],
        build: Box::new(|_| MdsRequest::Search {
            base: giis_suffix(),
            scope: Scope::Sub,
            filter: Filter::parse("(mds-device-group-name=cpu)").unwrap(),
            attrs: None,
        }),
        results: results.clone(),
        sent: 0,
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(100));
    // One cpu device-group entry per registered site.
    assert_eq!(results.borrow()[0].0, 4);
}

#[test]
fn identical_seeds_give_identical_mds_runs() {
    let run = |seed: u64| {
        let mut h = Harness::new(RunConfig::quick(seed));
        let server = h.lucky("lucky7");
        let gris = MdsBackend.gris(&mut h, server, 10, true, true);
        let results = Rc::new(RefCell::new(Vec::new()));
        let uc0 = h.uc[0];
        h.net.add_client(Box::new(Prober {
            from: uc0,
            to: gris,
            schedule: vec![1, 5, 9, 13],
            build: Box::new(|_| MdsRequest::search_all(gris_suffix(0))),
            results: results.clone(),
            sent: 0,
        }));
        h.net.start(&mut h.eng);
        h.eng.run_until(&mut h.net, SimTime::from_secs(60));
        let v = results.borrow().clone();
        (v, h.eng.fired)
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "event counts must match exactly");
    // A different seed still completes all queries (jitter differs).
    assert_eq!(c.0.len(), 4);
}
