//! Repeated-run determinism of the optimized kernels.
//!
//! The hot-path optimizations (compiled ClassAds, the MDS result cache,
//! incremental fair-share, calendar compaction) must not introduce any
//! run-to-run or parallelism-dependent nondeterminism.  This test runs
//! the same seeded set-2 and set-4 sweeps **twice** at `--jobs 1` and
//! `--jobs 8` and demands:
//!
//! * byte-identical figure CSVs across all four runs, and
//! * identical engine counters — `fired`, `popped`, `advances`,
//!   simulated span — as aggregated by the self-profiler.
//!
//! Counter identity is a stronger bar than CSV identity: two runs could
//! produce the same figures while scheduling different event streams
//! under the hood.  (Set 4 exercises ClassAd matchmaking and the MDS
//! caches; set 2 leans on the flow network.)

use gridmon_core::figures::{self, SetData};
use gridmon_core::report::csv;
use gridmon_core::runcfg::RunConfig;
use gridmon_runner::RunnerConfig;
use simcore::SimDuration;
use std::collections::BTreeMap;

fn cfg() -> RunConfig {
    let mut c = RunConfig::quick(20030622);
    c.warmup = SimDuration::from_secs(5);
    c.window = SimDuration::from_secs(15);
    c
}

const SCALE: f64 = 0.02;

fn csvs_of(data: &SetData) -> BTreeMap<u32, String> {
    figures::figures_of_set(data.set)
        .unwrap()
        .iter()
        .map(|&f| (f, csv(&figures::figure(data, f).unwrap())))
        .collect()
}

/// One profiled run of a set: figure CSVs plus aggregated engine counters.
fn profiled_run(set: u32, jobs: usize) -> (BTreeMap<u32, String>, (u64, u64, u64, u64)) {
    let rc = RunnerConfig {
        jobs,
        cache_dir: None,
        quiet: true,
    };
    let mut sink = gperf::PerfSink::new();
    let (data, stats) =
        gridmon_runner::run_set_profiled(set, &cfg(), SCALE, &rc, Some(&mut sink)).unwrap();
    assert_eq!(stats.executed, stats.total, "no cache in play");
    let t = sink.totals();
    (csvs_of(&data), (t.events, t.popped, t.advances, t.sim_us))
}

#[test]
fn repeated_runs_are_identical_in_figures_and_counters() {
    for set in [2u32, 4] {
        let (ref_csvs, ref_counters) = profiled_run(set, 1);
        assert!(!ref_csvs.is_empty());
        for (jobs, round) in [(1, 2), (8, 1), (8, 2)] {
            let (csvs, counters) = profiled_run(set, jobs);
            for (fig, want) in &ref_csvs {
                assert_eq!(
                    csvs.get(fig).unwrap(),
                    want,
                    "set {set} figure {fig} CSV diverged at jobs={jobs} round {round}"
                );
            }
            assert_eq!(
                counters, ref_counters,
                "set {set} engine counters (fired, popped, advances, sim_us) \
                 diverged at jobs={jobs} round {round}"
            );
        }
    }
}
