//! End-to-end R-GMA integration: registration, mediation, pull and push,
//! and failure propagation through the servlet chain.

use gridmon::core::deploy::{Harness, RgmaBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::rgma::{ConsumerServlet, ProducerServlet, Registry, RgmaMsg, SqlResultMsg, TupleSink};
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simnet::{
    Client, ClientCx, NodeId, ReqOutcome, ReqResult, RequestSpec, ServiceConfig, SvcKey,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Outcome classification for assertions.
#[derive(Debug, PartialEq, Clone)]
enum Got {
    Rows(usize),
    Failed,
    Refused,
}

struct SqlProber {
    from: NodeId,
    to: SvcKey,
    at: Vec<u64>,
    sql: String,
    results: Rc<RefCell<Vec<Got>>>,
}

impl Client for SqlProber {
    fn on_start(&mut self, cx: &mut ClientCx) {
        for &t in &self.at {
            cx.wake_in(SimDuration::from_secs(t), 0);
        }
    }
    fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
        let m = RgmaMsg::ConsumerQuery {
            sql: self.sql.clone(),
        };
        let bytes = m.wire_size();
        cx.submit(
            RequestSpec {
                from: self.from,
                to: self.to,
                payload: Box::new(m),
                req_bytes: bytes,
            },
            0,
        );
    }
    fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
        let got = match o.result {
            ReqResult::Ok(p, _) => match p.downcast::<SqlResultMsg>() {
                Ok(r) => Got::Rows(r.rows.len()),
                Err(_) => Got::Rows(usize::MAX),
            },
            ReqResult::Failed => Got::Failed,
            ReqResult::Refused => Got::Refused,
        };
        self.results.borrow_mut().push(got);
    }
}

fn standard_rgma(h: &mut Harness) -> (SvcKey, SvcKey, SvcKey) {
    let reg_node = h.lucky("lucky1");
    let ps_node = h.lucky("lucky3");
    let cs_node = h.lucky("lucky5");
    let reg = RgmaBackend.registry(h, reg_node);
    let ps = RgmaBackend.producer_servlet(h, ps_node, 10, reg);
    let cs = RgmaBackend.consumer_servlet(h, cs_node, reg);
    (reg, ps, cs)
}

#[test]
fn mediated_query_returns_producer_tuples() {
    let mut h = Harness::new(RunConfig::quick(201));
    let (reg, ps, cs) = standard_rgma(&mut h);
    let results = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(SqlProber {
        from: uc0,
        to: cs,
        at: vec![60],
        sql: "SELECT * FROM cpuload".into(),
        results: results.clone(),
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(120));
    assert_eq!(*results.borrow(), vec![Got::Rows(8)]);
    assert_eq!(
        h.net
            .service_as_mut::<Registry>(reg)
            .unwrap()
            .producer_count(),
        10
    );
    assert!(h.net.service_as::<ProducerServlet>(ps).unwrap().queries >= 1);
    assert_eq!(
        h.net.service_as::<ConsumerServlet>(cs).unwrap().mediations,
        1
    );
}

#[test]
fn filtered_sql_reaches_the_tuple_store() {
    let mut h = Harness::new(RunConfig::quick(202));
    let (_reg, _ps, cs) = standard_rgma(&mut h);
    let results = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(SqlProber {
        from: uc0,
        to: cs,
        at: vec![60],
        sql: "SELECT entity, value FROM cpuload WHERE value >= 0 ORDER BY value DESC LIMIT 3"
            .into(),
        results: results.clone(),
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(120));
    assert_eq!(*results.borrow(), vec![Got::Rows(3)]);
}

#[test]
fn unknown_table_is_empty_not_an_error() {
    let mut h = Harness::new(RunConfig::quick(203));
    let (_reg, _ps, cs) = standard_rgma(&mut h);
    let results = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(SqlProber {
        from: uc0,
        to: cs,
        at: vec![60],
        sql: "SELECT * FROM no_such_table".into(),
        results: results.clone(),
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(120));
    assert_eq!(*results.borrow(), vec![Got::Rows(0)]);
}

#[test]
fn unreachable_registry_fails_the_consumer_query() {
    let mut h = Harness::new(RunConfig::quick(204));
    // A "registry" that refuses every connection (capacity 0).
    let reg_node = h.lucky("lucky1");
    let dead_cfg = ServiceConfig {
        conn_capacity: 0,
        backlog: 0,
        workers: Some(1),
        ..Default::default()
    };
    let dead_reg = h
        .net
        .add_service(reg_node, dead_cfg, Box::new(Registry::new()), &mut h.eng);
    let cs_node = h.lucky("lucky5");
    let cs = RgmaBackend.consumer_servlet(&mut h, cs_node, dead_reg);
    let results = Rc::new(RefCell::new(Vec::new()));
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(SqlProber {
        from: uc0,
        to: cs,
        at: vec![10],
        sql: "SELECT * FROM cpuload".into(),
        results: results.clone(),
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(60));
    // The failure propagates: the consumer sees an error, not a silent
    // empty result.
    assert_eq!(*results.borrow(), vec![Got::Failed]);
}

#[test]
fn push_stream_delivers_batches_until_the_end() {
    let mut h = Harness::new(RunConfig::quick(205));
    let (_reg, ps, _cs) = standard_rgma(&mut h);
    let uc0 = h.uc[0];
    let sink = h.net.add_service(
        uc0,
        ServiceConfig::default(),
        Box::new(TupleSink::new()),
        &mut h.eng,
    );
    struct Sub {
        from: NodeId,
        ps: SvcKey,
        sink: SvcKey,
    }
    impl Client for Sub {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.wake_in(SimDuration::from_secs(50), 0);
        }
        fn on_wake(&mut self, _t: u64, cx: &mut ClientCx) {
            let m = RgmaMsg::Subscribe {
                table: "memory".into(),
                sink: self.sink,
                period_us: 5_000_000,
            };
            let bytes = m.wire_size();
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.ps,
                    payload: Box::new(m),
                    req_bytes: bytes,
                },
                0,
            );
        }
    }
    h.net.add_client(Box::new(Sub {
        from: uc0,
        ps,
        sink,
    }));
    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(160));
    let s = h.net.service_as::<TupleSink>(sink).unwrap();
    // (160-55)/5 ≈ 21 batches of 8 entities.
    assert!(s.batches >= 18, "batches {}", s.batches);
    assert_eq!(s.tuples, s.batches * 8);
}
