//! End-to-end determinism of the parallel sweep engine.
//!
//! The contract `gridmon-runner` makes is strong: for every figure
//! series of every experiment set, the CSV a parallel run writes is
//! **byte-identical** to the sequential runner's, whatever the worker
//! count, and a warm-cache run reproduces the same bytes without
//! executing a single point.  These tests pin that contract on a
//! scaled-down sweep of all five sets — the Set-5 resilience sweep
//! runs with its canonical fault plan installed, so injected faults
//! are held to the same byte-identity bar as pristine points.

use gridmon_core::experiments::set5;
use gridmon_core::figures::{self, SetData};
use gridmon_core::report::csv;
use gridmon_core::runcfg::RunConfig;
use gridmon_runner::RunnerConfig;
use simcore::SimDuration;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Short windows so the full 4-set sweep stays test-sized; the
/// mechanisms (and the determinism contract) are unchanged.
fn cfg() -> RunConfig {
    let mut c = RunConfig::quick(20030622);
    c.warmup = SimDuration::from_secs(5);
    c.window = SimDuration::from_secs(15);
    c
}

const SCALE: f64 = 0.02;

/// Per-set configuration: set 5 injects its canonical fault plan (the
/// other sets ignore `faults` entirely).
fn cfg_for(set: u32) -> RunConfig {
    let mut c = cfg();
    if set == 5 {
        c.faults = set5::default_spec();
    }
    c
}

/// Render every figure of a set to CSV, keyed by figure number.
fn csvs_of(data: &SetData) -> BTreeMap<u32, String> {
    figures::figures_of_set(data.set)
        .unwrap()
        .iter()
        .map(|&f| (f, csv(&figures::figure(data, f).unwrap())))
        .collect()
}

fn scratch_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridmon-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_figure_csv_is_byte_identical_across_job_counts() {
    for set in 1..=5 {
        let cfg = cfg_for(set);
        // The in-crate sequential runner is the reference.
        let reference = csvs_of(&figures::run_set(set, &cfg, SCALE, None).unwrap());
        assert!(!reference.is_empty());
        for jobs in [1, 2, 8] {
            let rc = RunnerConfig {
                jobs,
                cache_dir: None,
                quiet: true,
            };
            let (data, stats) = gridmon_runner::run_set(set, &cfg, SCALE, &rc).unwrap();
            assert_eq!(stats.executed, stats.total, "no cache in play");
            let got = csvs_of(&data);
            for (fig, want) in &reference {
                assert_eq!(
                    got.get(fig).unwrap(),
                    want,
                    "set {set} figure {fig} diverged at jobs={jobs}"
                );
            }
        }
    }
}

/// Observability must not perturb the simulation: with tracing and
/// metrics fully on (RingTracer + registry live), every figure CSV is
/// byte-identical to the plain NullTracer run, sequential or 8-wide.
#[test]
fn tracing_never_changes_figure_csvs() {
    for set in 1..=5 {
        let base = cfg_for(set);
        let mut traced = base;
        traced.obs = gridmon_core::ObsMode::FULL;
        let reference = csvs_of(&figures::run_set(set, &base, SCALE, None).unwrap());
        for jobs in [1, 8] {
            let rc = RunnerConfig {
                jobs,
                cache_dir: None,
                quiet: true,
            };
            let (data, stats) = gridmon_runner::run_set(set, &traced, SCALE, &rc).unwrap();
            assert_eq!(stats.executed, stats.total, "no cache in play");
            assert_eq!(
                csvs_of(&data),
                reference,
                "set {set} diverged under full tracing at jobs={jobs}"
            );
        }
    }
}

/// Self-profiling must not perturb the simulation either: running the
/// same sweep with a live `PerfSink` threaded through the runner
/// yields byte-identical figure CSVs, sequential or 8-wide — the
/// profiler only ever observes wall clocks and counters, never the
/// simulated state.
#[test]
fn profiling_never_changes_figure_csvs() {
    for set in 1..=5 {
        let cfg = cfg_for(set);
        let reference = csvs_of(&figures::run_set(set, &cfg, SCALE, None).unwrap());
        for jobs in [1, 8] {
            let rc = RunnerConfig {
                jobs,
                cache_dir: None,
                quiet: true,
            };
            let mut sink = gperf::PerfSink::new();
            let (data, stats) =
                gridmon_runner::run_set_profiled(set, &cfg, SCALE, &rc, Some(&mut sink)).unwrap();
            assert_eq!(stats.executed, stats.total, "no cache in play");
            assert_eq!(
                sink.totals().executed as usize,
                stats.total,
                "set {set}: every point leaves a perf record at jobs={jobs}"
            );
            assert!(sink.totals().events > 0, "engine counters reached the sink");
            assert_eq!(
                csvs_of(&data),
                reference,
                "set {set} diverged under profiling at jobs={jobs}"
            );
        }
    }
}

#[test]
fn warm_cache_reproduces_identical_csvs_without_executing() {
    let dir = scratch_cache("warm");
    let rc = RunnerConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        quiet: true,
    };
    for set in 1..=5 {
        let cfg = cfg_for(set);
        let (cold, s_cold) = gridmon_runner::run_set(set, &cfg, SCALE, &rc).unwrap();
        assert_eq!(s_cold.cache_hits, 0, "set {set}: scratch cache starts cold");
        assert_eq!(s_cold.executed, s_cold.total);
        let (warm, s_warm) = gridmon_runner::run_set(set, &cfg, SCALE, &rc).unwrap();
        assert_eq!(
            s_warm.executed, 0,
            "set {set}: warm run must execute nothing"
        );
        assert_eq!(s_warm.cache_hits, s_warm.total);
        assert_eq!(
            csvs_of(&cold),
            csvs_of(&warm),
            "set {set}: cached results must render identical CSVs"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_is_seed_and_scale_addressed() {
    let dir = scratch_cache("addr");
    let rc = RunnerConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        quiet: true,
    };
    let (_, first) = gridmon_runner::run_set(1, &cfg(), SCALE, &rc).unwrap();
    assert_eq!(first.cache_hits, 0);
    // A different base seed shares no cache entries...
    let mut reseeded = cfg();
    reseeded.seed ^= 1;
    let (_, other) = gridmon_runner::run_set(1, &reseeded, SCALE, &rc).unwrap();
    assert_eq!(other.cache_hits, 0);
    // ...while re-running at a larger scale reuses the shared x-points.
    let (_, wider) = gridmon_runner::run_set(1, &cfg(), SCALE * 2.0, &rc).unwrap();
    assert!(wider.cache_hits > 0, "overlapping points must be reused");
    assert!(wider.executed > 0, "new x-points must still run");
    let _ = std::fs::remove_dir_all(&dir);
}
