//! The paper's future-work items, implemented and verified:
//! hierarchical aggregation, the R-GMA composite producer, WAN sweeps and
//! open-loop access patterns.

use gridmon::core::ext;
use gridmon::core::runcfg::RunConfig;
use gridmon::simcore::SimDuration;

fn cfg() -> RunConfig {
    let mut c = RunConfig::quick(55);
    c.warmup = SimDuration::from_secs(40);
    c.window = SimDuration::from_secs(90);
    c
}

#[test]
fn hierarchy_beats_flat_aggregation() {
    // The paper: "To achieve a higher scalability for an aggregate
    // information server, a multi-layer architecture ... should be
    // examined."  Examined: with 120 sources, a two-level hierarchy
    // answers faster than a flat GIIS because the top level serves a
    // smaller, pre-aggregated directory.
    let (flat, hier) = ext::hierarchy_study(&cfg(), 120, 5);
    assert!(
        hier.throughput > flat.throughput,
        "flat {} vs hierarchical {}",
        flat.throughput,
        hier.throughput
    );
    assert!(
        hier.response_time < flat.response_time,
        "flat rt {} vs hierarchical rt {}",
        flat.response_time,
        hier.response_time
    );
}

#[test]
fn wan_quality_shapes_directory_performance() {
    let points = ext::wan_study(&cfg(), 100);
    assert_eq!(points.len(), 4);
    // Throughput never improves as the pipe degrades, and the worst link
    // is clearly worse than the best.
    let best = &points[0];
    let worst = &points[3];
    assert!(
        worst.m.throughput < best.m.throughput,
        "best {} worst {}",
        best.m.throughput,
        worst.m.throughput
    );
    assert!(worst.m.response_time > best.m.response_time);
}

#[test]
fn aggregate_query_costs_more_than_direct() {
    // Future work: "determine the difference between querying an
    // aggregate information server and an information server for the
    // same piece of information."  With GSI on the GRIS and anonymous
    // binds on the GIIS the aggregate is actually *faster* per query at
    // low load — the interesting comparison is throughput per host load.
    let (direct, via) = ext::aggregate_vs_direct(&cfg(), 50);
    assert!(direct.throughput > 0.0 && via.throughput > 0.0);
    // The aggregate server pays the search over five sites' data: its
    // host CPU per completed query is higher.
    let direct_cost = direct.cpu_load / direct.throughput.max(1e-9);
    let via_cost = via.cpu_load / via.throughput.max(1e-9);
    assert!(
        via_cost > direct_cost,
        "direct {direct_cost} vs aggregate {via_cost}"
    );
}

#[test]
fn open_loop_overload_loses_queries() {
    let points = ext::open_loop_study(&cfg(), &[5.0, 60.0]);
    assert_eq!(points.len(), 2);
    let light = &points[0];
    let heavy = &points[1];
    // Under light offered load nearly everything completes.
    assert!(
        light.completed_per_sec > 0.8 * light.offered_per_sec,
        "light: completed {} of {}",
        light.completed_per_sec,
        light.offered_per_sec
    );
    // Far past the servlet's ~17 q/s capacity, the excess is lost — the
    // open-loop pattern turns saturation into drops instead of the
    // closed-loop slowdown.
    assert!(
        heavy.lost_per_sec > 10.0,
        "heavy: lost {}/s of {} offered",
        heavy.lost_per_sec,
        heavy.offered_per_sec
    );
    assert!(heavy.completed_per_sec < heavy.offered_per_sec * 0.75);
}

#[test]
fn composite_producer_serves_aggregated_sites() {
    let m = ext::composite_study(&cfg(), 5);
    // 10 users querying the composite get answers (it is a single-stop
    // server, so throughput tracks the closed loop).
    assert!(m.throughput > 3.0, "throughput {}", m.throughput);
    assert!(m.response_time < 2.0, "rt {}", m.response_time);
    assert_eq!(m.x, 5.0);
}
