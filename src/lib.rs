//! # gridmon — a performance study of Grid monitoring services
//!
//! Umbrella crate for the reproduction of *"A Performance Study of
//! Monitoring and Information Services for Distributed Systems"* (Zhang,
//! Freschl, Schopf — HPDC 2003).  It re-exports every workspace crate
//! under one roof:
//!
//! | Module | Contents |
//! |---|---|
//! | [`simcore`] | discrete-event simulation kernel |
//! | [`simnet`] | flow-level network + service/plan execution |
//! | [`ldap`] | in-memory LDAP directory (MDS substrate) |
//! | [`relsql`] | in-memory relational engine (R-GMA substrate) |
//! | [`classad`] | ClassAd language + matchmaking (Hawkeye substrate) |
//! | [`mds`] | Globus MDS 2.1 model (providers, GRIS, GIIS) |
//! | [`rgma`] | R-GMA 1.18 model (producers, servlets, registry) |
//! | [`hawkeye`] | Hawkeye 0.1.4 model (modules, agent, manager) |
//! | [`ganglia`] | 5-second host metric sampling |
//! | [`testbed`] | the simulated Lucky/UC platform |
//! | [`workload`] | closed-loop simulated users |
//! | [`core`] | the comparative study: experiments, figures, reports |
//!
//! Start with the `quickstart` example, then see
//! [`core::experiments`] for the paper's four
//! experiment sets.

pub use classad;
pub use ganglia;
pub use gridmon_core as core;
pub use hawkeye;
pub use ldapdir as ldap;
pub use mds;
pub use relsql;
pub use rgma;
pub use simcore;
pub use simnet;
pub use testbed;
pub use workload;
