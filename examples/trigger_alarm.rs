//! Hawkeye problem detection — the paper's headline use case: "a system
//! administrator may want to be notified when changes in system load
//! occur".
//!
//! Agents on every pool member advertise Startd ClassAds to the Manager
//! every 30 seconds.  An administrator submits a *Trigger ClassAd* whose
//! `Requirements` matches machines whose advertised metric crosses a
//! threshold; each time a matching ad arrives, the Manager fires the
//! trigger and notifies the administrator's sink (the paper's example
//! runs a job that kills Netscape on the hot machine).
//!
//! ```text
//! cargo run --release --example trigger_alarm
//! ```

use gridmon::classad::ClassAd;
use gridmon::core::deploy::{Harness, HawkeyeBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::hawkeye::{HawkeyeMsg, Manager};
use gridmon::simcore::SimTime;
use gridmon::simnet::{Payload, Plan, Service, ServiceConfig, SvcCx};

/// The administrator's notification sink ("send me an email").
struct AdminInbox {
    notifications: Vec<String>,
}

impl Service for AdminInbox {
    fn handle(&mut self, req: Payload, cx: &mut SvcCx) -> Plan {
        if let Ok(msg) = req.downcast::<HawkeyeMsg>() {
            if let HawkeyeMsg::TriggerFired {
                machine,
                trigger_idx,
            } = *msg
            {
                self.notifications.push(format!(
                    "[t={:>6.2}s] ALERT: trigger #{trigger_idx} fired for {machine}",
                    cx.now.as_secs_f64()
                ));
            }
        }
        Plan::new().cpu(200.0).done()
    }
    fn name(&self) -> &str {
        "admin-inbox"
    }
}

fn main() {
    let mut h = Harness::new(RunConfig::quick(11));
    let mgr_node = h.lucky("lucky3");
    let manager = HawkeyeBackend.manager(&mut h, mgr_node);

    // Agents on the rest of the pool.
    for name in ["lucky0", "lucky1", "lucky4", "lucky5", "lucky6", "lucky7"] {
        let node = h.lucky(name);
        HawkeyeBackend.agent(&mut h, node, 11, manager);
    }

    // The administrator's inbox lives on a UC workstation.
    let inbox = h.net.add_service(
        h.uc[0],
        ServiceConfig::default(),
        Box::new(AdminInbox {
            notifications: Vec::new(),
        }),
        &mut h.eng,
    );

    // Trigger: fire when a machine advertises a cpu metric over 5
    // (the synthetic cpu module metric varies per machine; some match).
    let trigger = ClassAd::parse(
        "Requirements = TARGET.Hawkeye_cpu_Metric > 5 && TARGET.OpSys == \"LINUX\"\n",
    )
    .expect("trigger ad");
    println!("admin: submitting trigger ClassAd:\n{trigger}");
    h.net
        .service_as_mut::<Manager>(manager)
        .unwrap()
        .add_trigger(trigger, Some(inbox));

    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(95));

    let m = h.net.service_as::<Manager>(manager).unwrap();
    println!(
        "manager: {} machines in the pool, {} ads received, {} trigger firings",
        m.pool_size(),
        m.ads_received,
        m.triggers_fired
    );
    let inbox_ref = h.net.service_as::<AdminInbox>(inbox).unwrap();
    for n in &inbox_ref.notifications {
        println!("{n}");
    }
    assert!(
        !inbox_ref.notifications.is_empty(),
        "expected at least one alert"
    );
}
