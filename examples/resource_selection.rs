//! Resource selection through an MDS GIIS — the paper's motivating use
//! case: "a user may want to determine the best platform to run an
//! application on".
//!
//! Five GRISes (one per compute site) register with a site GIIS.  A
//! broker client searches the aggregate directory for hosts matching a
//! requirement filter and picks the best one.
//!
//! ```text
//! cargo run --release --example resource_selection
//! ```

use gridmon::core::deploy::{giis_suffix, Harness, MdsBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::ldap::{Filter, Scope};
use gridmon::mds::{Giis, MdsRequest, MdsSearchResult};
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simnet::{Client, ClientCx, NodeId, ReqOutcome, ReqResult, RequestSpec, SvcKey};

/// A resource broker: asks the GIIS for candidate hosts, ranks them.
struct Broker {
    from: NodeId,
    giis: SvcKey,
}

impl Client for Broker {
    fn on_start(&mut self, cx: &mut ClientCx) {
        // Give the GRISes time to register (soft-state heartbeats).
        cx.wake_in(SimDuration::from_secs(35), 0);
    }

    fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
        // "Which devices advertise a cpu metric?"
        let req = MdsRequest::Search {
            base: giis_suffix(),
            scope: Scope::Sub,
            filter: Filter::parse("(&(objectclass=mdsdevice)(mds-cpu-metric=*))").unwrap(),
            attrs: None,
        };
        let bytes = req.wire_size();
        println!(
            "[t={:>6.2}s] broker: searching the GIIS for cpu-capable devices...",
            cx.now().as_secs_f64()
        );
        cx.submit(
            RequestSpec {
                from: self.from,
                to: self.giis,
                payload: Box::new(req),
                req_bytes: bytes,
            },
            0,
        );
    }

    fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
        let ReqResult::Ok(payload, _) = outcome.result else {
            println!("broker: query failed");
            return;
        };
        let result = payload.downcast::<MdsSearchResult>().expect("result");
        println!(
            "[t={:>6.2}s] broker: {} candidate devices across the grid:",
            cx.now().as_secs_f64(),
            result.total
        );
        // Rank by the advertised metric (higher = better here).
        let mut best: Option<(&str, f64)> = None;
        for e in result.entries.iter() {
            let host = e.first("mds-host-hn").unwrap_or("?");
            let metric: f64 = e
                .first("mds-cpu-metric")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            println!("    {host:<24} cpu-metric = {metric}");
            if best.is_none_or(|(_, m)| metric > m) {
                best = Some((host, metric));
            }
        }
        if let Some((host, metric)) = best {
            println!("broker: selected {host} (metric {metric}) for the job");
        }
    }
}

fn main() {
    let mut h = Harness::new(RunConfig::quick(7));
    let giis_node = h.lucky("lucky0");
    let gris_nodes: Vec<NodeId> = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]
        .iter()
        .map(|n| h.lucky(n))
        .collect();
    // Five registered sites, cache pinned (the paper's Experiment 2
    // directory configuration).
    let (giis, _grafts) = MdsBackend.giis_pool(&mut h, giis_node, &gris_nodes, 5, None);
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(Broker { from: uc0, giis }));

    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(120));

    let g = h.net.service_as::<Giis>(giis).expect("giis");
    println!(
        "\nGIIS summary: {} sites registered, {} entries aggregated, {} pulls",
        g.registered_count(),
        g.aggregated_entries(),
        g.pulls
    );
    assert_eq!(g.registered_count(), 5);
}
