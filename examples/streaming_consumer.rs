//! R-GMA push mode — the paper's second use case: "a client program may
//! want to collect a stream of data to help steer an application".
//!
//! A ProducerServlet hosts load-data producers; a consumer first runs a
//! one-off pull query through the ConsumerServlet (Registry mediation),
//! then subscribes to the `cpuload` table and receives tuple batches
//! pushed every 10 seconds.
//!
//! ```text
//! cargo run --release --example streaming_consumer
//! ```

use gridmon::core::deploy::{Harness, RgmaBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::rgma::{ProducerServlet, Registry, RgmaMsg, SqlResultMsg, TupleSink};
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simnet::{
    Client, ClientCx, NodeId, ReqOutcome, ReqResult, RequestSpec, ServiceConfig, SvcKey,
};

struct SteeringClient {
    from: NodeId,
    consumer_servlet: SvcKey,
    producer_servlet: SvcKey,
    sink: SvcKey,
}

impl Client for SteeringClient {
    fn on_start(&mut self, cx: &mut ClientCx) {
        // Let producers register and publish first.
        cx.wake_in(SimDuration::from_secs(40), 1);
    }

    fn on_wake(&mut self, tag: u64, cx: &mut ClientCx) {
        match tag {
            1 => {
                println!(
                    "[t={:>6.2}s] consumer: SELECT * FROM cpuload   (pull, via Registry mediation)",
                    cx.now().as_secs_f64()
                );
                let m = RgmaMsg::ConsumerQuery {
                    sql: "SELECT * FROM cpuload".into(),
                };
                let bytes = m.wire_size();
                cx.submit(
                    RequestSpec {
                        from: self.from,
                        to: self.consumer_servlet,
                        payload: Box::new(m),
                        req_bytes: bytes,
                    },
                    1,
                );
            }
            2 => {
                println!(
                    "[t={:>6.2}s] consumer: subscribing to cpuload (push every 10 s)",
                    cx.now().as_secs_f64()
                );
                let m = RgmaMsg::Subscribe {
                    table: "cpuload".into(),
                    sink: self.sink,
                    period_us: 10_000_000,
                };
                let bytes = m.wire_size();
                cx.submit(
                    RequestSpec {
                        from: self.from,
                        to: self.producer_servlet,
                        payload: Box::new(m),
                        req_bytes: bytes,
                    },
                    2,
                );
            }
            _ => {}
        }
    }

    fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
        match (outcome.tag, outcome.result) {
            (1, ReqResult::Ok(payload, _)) => {
                let r = payload.downcast::<SqlResultMsg>().expect("sql result");
                println!(
                    "[t={:>6.2}s] consumer: pull returned {} rows ({:?})",
                    cx.now().as_secs_f64(),
                    r.rows.len(),
                    r.columns
                );
                cx.wake_in(SimDuration::from_secs(1), 2);
            }
            (2, ReqResult::Ok(..)) => {
                println!(
                    "[t={:>6.2}s] consumer: subscription accepted",
                    cx.now().as_secs_f64()
                );
            }
            (tag, _) => println!("request {tag} failed"),
        }
    }
}

fn main() {
    let mut h = Harness::new(RunConfig::quick(5));
    let reg_node = h.lucky("lucky1");
    let ps_node = h.lucky("lucky3");
    let cs_node = h.lucky("lucky5");

    let registry = RgmaBackend.registry(&mut h, reg_node);
    let producer_servlet = RgmaBackend.producer_servlet(&mut h, ps_node, 10, registry);
    let consumer_servlet = RgmaBackend.consumer_servlet(&mut h, cs_node, registry);

    // The consumer's stream sink runs next to the consumer at UC.
    let uc0 = h.uc[0];
    let sink = h.net.add_service(
        uc0,
        ServiceConfig::default(),
        Box::new(TupleSink::new()),
        &mut h.eng,
    );
    h.net.add_client(Box::new(SteeringClient {
        from: uc0,
        consumer_servlet,
        producer_servlet,
        sink,
    }));

    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(180));

    let registry_ref = h.net.service_as_mut::<Registry>(registry).unwrap();
    println!(
        "\nregistry: {} producers registered",
        registry_ref.producer_count()
    );
    let ps = h
        .net
        .service_as::<ProducerServlet>(producer_servlet)
        .unwrap();
    println!(
        "producer servlet: {} tuples published, {} stream batches sent",
        ps.tuples_published, ps.stream_batches
    );
    let sink_ref = h.net.service_as::<TupleSink>(sink).unwrap();
    println!(
        "consumer sink: {} batches, {} tuples received over the stream",
        sink_ref.batches, sink_ref.tuples
    );
    assert!(sink_ref.batches >= 10);
}
