//! Quickstart: deploy an MDS GRIS on the simulated Lucky testbed, query
//! it three times (cold, then cached) and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gridmon::core::deploy::{gris_suffix, Harness, MdsBackend};
use gridmon::core::runcfg::RunConfig;
use gridmon::mds::{Gris, MdsRequest, MdsSearchResult};
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simnet::{Client, ClientCx, NodeId, ReqOutcome, ReqResult, RequestSpec, SvcKey};

/// A little client that queries a few times and prints the results.
struct Demo {
    from: NodeId,
    gris: SvcKey,
    queries_left: u32,
}

impl Client for Demo {
    fn on_start(&mut self, cx: &mut ClientCx) {
        cx.wake_in(SimDuration::from_secs(1), 0);
    }

    fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
        let req = MdsRequest::search_all(gris_suffix(0));
        let bytes = req.wire_size();
        println!(
            "[t={:>7.3}s] user: ldapsearch -h lucky7 -b '{}' '(objectclass=*)'",
            cx.now().as_secs_f64(),
            gris_suffix(0)
        );
        cx.submit(
            RequestSpec {
                from: self.from,
                to: self.gris,
                payload: Box::new(req),
                req_bytes: bytes,
            },
            0,
        );
    }

    fn on_outcome(&mut self, outcome: ReqOutcome, cx: &mut ClientCx) {
        let rt = (outcome.completed - outcome.submitted).as_secs_f64();
        match outcome.result {
            ReqResult::Ok(payload, wire_bytes) => {
                let result = payload
                    .downcast::<MdsSearchResult>()
                    .expect("search result");
                println!(
                    "[t={:>7.3}s] user: {} entries, {} bytes on the wire, {:.3} s response time",
                    cx.now().as_secs_f64(),
                    result.total,
                    wire_bytes,
                    rt
                );
            }
            _ => println!(
                "[t={:>7.3}s] query failed after {rt:.3} s",
                cx.now().as_secs_f64()
            ),
        }
        self.queries_left -= 1;
        if self.queries_left > 0 {
            cx.wake_in(SimDuration::from_secs(5), 0);
        }
    }
}

fn main() {
    // The simulated testbed: seven lucky nodes at ANL, twenty client
    // machines at UC, a WAN in between.
    let mut h = Harness::new(RunConfig::quick(42));
    let server = h.lucky("lucky7");

    // A GRIS with the ten default information providers, data cached
    // ("data always in cache", the configuration the paper recommends).
    let gris = MdsBackend.gris(&mut h, server, 10, true, true);

    // One user at UC.
    let uc0 = h.uc[0];
    h.net.add_client(Box::new(Demo {
        from: uc0,
        gris,
        queries_left: 3,
    }));

    h.net.start(&mut h.eng);
    h.eng.run_until(&mut h.net, SimTime::from_secs(60));

    let g = h.net.service_as::<Gris>(gris).expect("gris");
    println!(
        "\nGRIS summary: {} queries answered, {} provider invocations \
         (caching means the 10 providers ran only once)",
        g.queries, g.provider_runs
    );
    assert_eq!(g.provider_runs, 10);
}
