//! The paper's proposed fix for aggregate-server scalability, live:
//! "a multi-layer architecture in which each middle-level aggregate
//! information server manages a subset of information servers should be
//! examined."
//!
//! This example builds both architectures over the same 60 GRISes —
//! flat (everything registered to one GIIS) and two-level (five branch
//! GIISes under a top GIIS) — runs the paper's Experiment-4 workload on
//! each, and prints the comparison.
//!
//! ```text
//! cargo run --release --example hierarchical_giis
//! ```

use gridmon::core::ext::hierarchy_study;
use gridmon::core::runcfg::RunConfig;
use gridmon::simcore::SimDuration;

fn main() {
    let mut cfg = RunConfig::quick(2003);
    cfg.warmup = SimDuration::from_secs(40);
    cfg.window = SimDuration::from_secs(120);

    let n_gris = 60;
    let branches = 5;
    println!(
        "Aggregating {n_gris} GRISes, 10 users querying everything\n\
         (warmup {:.0}s, measurement window {:.0}s)\n",
        cfg.warmup.as_secs_f64(),
        cfg.window.as_secs_f64()
    );

    let (flat, hier) = hierarchy_study(&cfg, n_gris, branches);

    println!(
        "{:<28} {:>12} {:>14} {:>8} {:>8}",
        "architecture", "throughput", "response (s)", "load1", "cpu %"
    );
    for (label, m) in [
        ("flat (one GIIS)", flat),
        (&format!("two-level ({branches} branches)"), hier),
    ] {
        println!(
            "{:<28} {:>12.2} {:>14.3} {:>8.2} {:>8.1}",
            label, m.throughput, m.response_time, m.load1, m.cpu_load
        );
    }

    println!(
        "\nthe hierarchy answers {:.1}x faster at {:.1}x the throughput:\n\
         the top GIIS searches {branches} pre-merged branch directories\n\
         instead of {n_gris} individually registered ones.",
        flat.response_time / hier.response_time.max(1e-9),
        hier.throughput / flat.throughput.max(1e-9),
    );
    assert!(hier.throughput > flat.throughput);
}
